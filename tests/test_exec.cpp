#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/exec.hpp"

namespace pwdft {
namespace {

/// Restores the engine width on scope exit so tests compose.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    const std::size_t n = 10007;  // prime: exercises ragged chunking
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    exec::parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " nt=" << nt;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  exec::parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, GrainIsRespected) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<int> bad{0};
  const std::size_t n = 1000, grain = 64;
  exec::parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        // Every chunk except the ragged tail must have >= grain elements.
        if (e - b < grain && e != n) bad.fetch_add(1);
      },
      grain);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h.store(0);
  exec::parallel_for(16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      exec::parallel_for(16, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t k = ib; k < ie; ++k) hits[i * 16 + k].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionInChunkPropagatesAndPoolSurvives) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    EXPECT_THROW(
        exec::parallel_for(100,
                           [&](std::size_t b, std::size_t) {
                             if (b == 0) throw std::runtime_error("chunk failed");
                           }),
        std::runtime_error);
    // The engine must be reusable afterwards.
    std::atomic<int> sum{0};
    exec::parallel_for(10, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(sum.load(), 10);
  }
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  // Two external threads (the ThreadComm-ranks scenario) race for the pool;
  // the loser runs inline. Both must see full coverage.
  ThreadGuard guard;
  exec::set_num_threads(4);
  constexpr std::size_t n = 5000;
  std::vector<int> a(n, 0), b(n, 0);
  auto body = [n](std::vector<int>& v) {
    exec::parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) v[i] += 1;
    });
  };
  std::thread ta([&] { for (int rep = 0; rep < 50; ++rep) body(a); });
  std::thread tb([&] { for (int rep = 0; rep < 50; ++rep) body(b); });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a[i], 50);
    ASSERT_EQ(b[i], 50);
  }
}

TEST(ThreadPool, RunAsyncExecutesAndBlockingTasksDoNotStarveEachOther) {
  // Two tasks that can only finish together (a rendezvous) must run
  // concurrently — this is the prefetch-broadcast pattern of the Fock
  // operator across ThreadComm ranks.
  std::atomic<int> arrived{0};
  auto rendezvous = [&] {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  };
  auto f1 = exec::pool().run_async(rendezvous);
  auto f2 = exec::pool().run_async(rendezvous);
  f1.wait();
  f2.wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(TaskGroup, WaitJoinsAllTasks) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  for (int i = 0; i < 8; ++i) tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_TRUE(tg.empty());
  // The group is reusable after wait().
  tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 9);
}

TEST(TaskGroup, WaitRethrowsFirstErrorAfterJoiningEverything) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  tg.run([&] { done.fetch_add(1); });
  tg.run([] { throw std::runtime_error("task failed"); });
  tg.run([&] { done.fetch_add(1); });
  EXPECT_THROW(tg.wait(), std::runtime_error);
  // Every non-throwing task ran to completion before wait() returned.
  EXPECT_EQ(done.load(), 2);
  EXPECT_TRUE(tg.empty());
}

TEST(TaskGroup, DestructorJoinsAndSwallowsErrors) {
  std::atomic<bool> ran{false};
  {
    exec::TaskGroup tg;
    tg.run([&] {
      ran.store(true);
      throw std::runtime_error("ignored by the destructor");
    });
  }  // must not terminate
  EXPECT_TRUE(ran.load());
}

TEST(TaskGroup, OverlapsWithParallelForOnTheCaller) {
  // The pipelining shape used by the Fock/transpose overlap: a blocking
  // async task in flight while the caller drives a fork-join loop.
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<bool> release{false};
  std::atomic<int> sum{0};
  exec::TaskGroup tg;
  tg.run([&] {
    while (!release.load()) std::this_thread::yield();
  });
  exec::parallel_for(1000, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 1000);
  release.store(true);
  tg.wait();
}

TEST(ThreadPool, SetNumThreadsChangesSize) {
  ThreadGuard guard;
  exec::set_num_threads(3);
  EXPECT_EQ(exec::pool().size(), 3u);
  exec::set_num_threads(1);
  EXPECT_EQ(exec::pool().size(), 1u);
}

TEST(Workspace, BuffersAreStableAndReused) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 1000);
  const Complex* p0 = a.data();
  a[999] = Complex{1.0, 2.0};
  // Same slot, same or smaller size: same storage, no allocation.
  auto b = ws.cbuf(exec::Slot::grid_a, 500);
  EXPECT_EQ(b.data(), p0);
  // Growth may move, but content capacity never shrinks.
  auto c = ws.cbuf(exec::Slot::grid_a, 2000);
  EXPECT_GE(c.size(), 2000u);
  auto d = ws.cbuf(exec::Slot::grid_a, 1000);
  EXPECT_EQ(d.data(), c.data());
}

TEST(Workspace, SlotsNeverAlias) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 64);
  auto b = ws.cbuf(exec::Slot::grid_b, 64);
  EXPECT_NE(a.data(), b.data());
  auto ra = ws.rbuf(exec::Slot::grid_a, 64);
  EXPECT_NE(static_cast<const void*>(ra.data()), static_cast<const void*>(a.data()));
}

TEST(Workspace, CmatKeepsCapacityAcrossReshape) {
  auto& ws = exec::workspace();
  CMatrix& m = ws.cmat(exec::Slot::cn_r, 100, 10);
  m(99, 9) = Complex{3.0, 0.0};
  const Complex* p0 = m.data();
  CMatrix& m2 = ws.cmat(exec::Slot::cn_r, 10, 100);  // same element count
  EXPECT_EQ(&m, &m2);
  EXPECT_EQ(m2.data(), p0);
  EXPECT_EQ(m2.rows(), 10u);
  EXPECT_EQ(m2.cols(), 100u);
}

TEST(Workspace, PerThreadIsolation) {
  auto& main_ws = exec::workspace();
  auto main_buf = main_ws.cbuf(exec::Slot::coeffs_a, 128);
  const void* other = nullptr;
  std::thread t([&] { other = exec::workspace().cbuf(exec::Slot::coeffs_a, 128).data(); });
  t.join();
  EXPECT_NE(other, static_cast<const void*>(main_buf.data()));
}

TEST(Workspace, BytesReservedGrowsMonotonically) {
  auto& ws = exec::workspace();
  const std::size_t before = ws.bytes_reserved();
  ws.cbuf(exec::Slot::fock_pair, 1 << 16);
  EXPECT_GE(ws.bytes_reserved(), before + (1 << 16) * sizeof(Complex));
}

}  // namespace
}  // namespace pwdft
