#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/exec.hpp"
#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "ham/fock.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace pwdft {
namespace {

/// Restores the engine width on scope exit so tests compose.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    const std::size_t n = 10007;  // prime: exercises ragged chunking
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    exec::parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " nt=" << nt;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  exec::parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, GrainIsRespected) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<int> bad{0};
  const std::size_t n = 1000, grain = 64;
  exec::parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        // Every chunk except the ragged tail must have >= grain elements.
        if (e - b < grain && e != n) bad.fetch_add(1);
      },
      grain);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h.store(0);
  exec::parallel_for(16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      exec::parallel_for(16, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t k = ib; k < ie; ++k) hits[i * 16 + k].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionInChunkPropagatesAndPoolSurvives) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    EXPECT_THROW(
        exec::parallel_for(100,
                           [&](std::size_t b, std::size_t) {
                             if (b == 0) throw std::runtime_error("chunk failed");
                           }),
        std::runtime_error);
    // The engine must be reusable afterwards.
    std::atomic<int> sum{0};
    exec::parallel_for(10, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(sum.load(), 10);
  }
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  // Two external threads (the ThreadComm-ranks scenario) race for the pool;
  // the loser runs inline. Both must see full coverage.
  ThreadGuard guard;
  exec::set_num_threads(4);
  constexpr std::size_t n = 5000;
  std::vector<int> a(n, 0), b(n, 0);
  auto body = [n](std::vector<int>& v) {
    exec::parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) v[i] += 1;
    });
  };
  std::thread ta([&] { for (int rep = 0; rep < 50; ++rep) body(a); });
  std::thread tb([&] { for (int rep = 0; rep < 50; ++rep) body(b); });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a[i], 50);
    ASSERT_EQ(b[i], 50);
  }
}

TEST(ThreadPool, RunAsyncExecutesAndBlockingTasksDoNotStarveEachOther) {
  // Two tasks that can only finish together (a rendezvous) must run
  // concurrently — this is the prefetch-broadcast pattern of the Fock
  // operator across ThreadComm ranks.
  std::atomic<int> arrived{0};
  auto rendezvous = [&] {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  };
  auto f1 = exec::pool().run_async(rendezvous);
  auto f2 = exec::pool().run_async(rendezvous);
  f1.wait();
  f2.wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(TaskGroup, WaitJoinsAllTasks) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  for (int i = 0; i < 8; ++i) tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_TRUE(tg.empty());
  // The group is reusable after wait().
  tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 9);
}

TEST(TaskGroup, WaitRethrowsFirstErrorAfterJoiningEverything) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  tg.run([&] { done.fetch_add(1); });
  tg.run([] { throw std::runtime_error("task failed"); });
  tg.run([&] { done.fetch_add(1); });
  EXPECT_THROW(tg.wait(), std::runtime_error);
  // Every non-throwing task ran to completion before wait() returned.
  EXPECT_EQ(done.load(), 2);
  EXPECT_TRUE(tg.empty());
}

TEST(TaskGroup, DestructorJoinsAndSwallowsErrors) {
  std::atomic<bool> ran{false};
  {
    exec::TaskGroup tg;
    tg.run([&] {
      ran.store(true);
      throw std::runtime_error("ignored by the destructor");
    });
  }  // must not terminate
  EXPECT_TRUE(ran.load());
}

TEST(TaskGroup, OverlapsWithParallelForOnTheCaller) {
  // The pipelining shape used by the Fock/transpose overlap: a blocking
  // async task in flight while the caller drives a fork-join loop.
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<bool> release{false};
  std::atomic<int> sum{0};
  exec::TaskGroup tg;
  tg.run([&] {
    while (!release.load()) std::this_thread::yield();
  });
  exec::parallel_for(1000, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 1000);
  release.store(true);
  tg.wait();
}

TEST(ThreadPool, SetNumThreadsChangesSize) {
  ThreadGuard guard;
  exec::set_num_threads(3);
  EXPECT_EQ(exec::pool().size(), 3u);
  exec::set_num_threads(1);
  EXPECT_EQ(exec::pool().size(), 1u);
}

// ---- TaskGraph ----------------------------------------------------------

namespace {

/// Forces the parallel replay path even on single-core CI boxes (the
/// default policy would run graphs serially there), so the ready-ring and
/// dependency-counter machinery is actually exercised — and TSan-checked.
struct ParallelReplayGuard {
  ParallelReplayGuard() { exec::set_graph_serial_when_oversubscribed(false); }
  ~ParallelReplayGuard() { exec::set_graph_serial_when_oversubscribed(true); }
};

/// A three-stage pipeline graph over `lanes` independent chains:
/// stage 0 writes lane seed, stages 1 and 2 each add a constant reading the
/// previous stage's value — any dependency violation corrupts the result.
struct StageCtx {
  std::vector<int>* v;
};

void build_stage_graph(exec::TaskGraph& g, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    auto s0 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] = int(l); });
    auto s1 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] += 1000; });
    auto s2 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] *= 2; });
    g.add_edge(s0, s1);
    g.add_edge(s1, s2);
  }
  g.seal();
}

}  // namespace

TEST(TaskGraph, ExecutesAllNodesRespectingEdgesAtAnyWidth) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    const std::size_t lanes = 97;
    exec::TaskGraph g;
    build_stage_graph(g, lanes);
    std::vector<int> v(lanes, -1);
    StageCtx ctx{&v};
    g.replay(&ctx);
    for (std::size_t l = 0; l < lanes; ++l)
      ASSERT_EQ(v[l], 2 * (int(l) + 1000)) << "lane " << l << " nt " << nt;
  }
}

TEST(TaskGraph, DiamondDependencyJoinsBothBranches) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  // a -> {b, c} -> d: d must observe both branch writes.
  std::atomic<int> a{0}, b{0}, c{0}, join_ok{0};
  exec::TaskGraph g;
  auto na = g.add_node([&](void*) { a.store(1); });
  auto nb = g.add_node([&](void*) { b.store(a.load() + 1); });
  auto nc = g.add_node([&](void*) { c.store(a.load() + 2); });
  auto nd = g.add_node([&](void*) { join_ok.store(b.load() == 2 && c.load() == 3); });
  g.add_edge(na, nb);
  g.add_edge(na, nc);
  g.add_edge(nb, nd);
  g.add_edge(nc, nd);
  g.seal();
  for (int rep = 0; rep < 50; ++rep) {
    a = b = c = join_ok = 0;
    g.replay(nullptr);
    ASSERT_EQ(join_ok.load(), 1) << "rep " << rep;
  }
}

TEST(TaskGraph, ReplayIsReusableAcrossContextsAndCoexistingShapes) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  // Two graphs of different shapes replayed alternately against distinct
  // contexts — the reuse pattern of the Fft3D graph cache (one graph per
  // batch shape, many data sets).
  exec::TaskGraph small, big;
  build_stage_graph(small, 3);
  build_stage_graph(big, 64);
  std::vector<int> va(3), vb(64), vc(3);
  StageCtx ca{&va}, cb{&vb}, cc{&vc};
  for (int rep = 0; rep < 10; ++rep) {
    small.replay(&ca);
    big.replay(&cb);
    small.replay(&cc);
    for (std::size_t l = 0; l < 3; ++l) {
      ASSERT_EQ(va[l], 2 * (int(l) + 1000));
      ASSERT_EQ(vc[l], 2 * (int(l) + 1000));
    }
    for (std::size_t l = 0; l < 64; ++l) ASSERT_EQ(vb[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, ReplayFromAsyncLaneRunsInlineWithoutStealingThePool) {
  // The overlap contract extended to graphs: a replay issued from an
  // async-lane task must not win the pool away from the caller's compute.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  exec::TaskGraph g;
  build_stage_graph(g, 32);
  std::vector<int> v_async(32), v_main(32);
  StageCtx ca{&v_async}, cm{&v_main};
  exec::TaskGroup tg;
  std::atomic<bool> release{false};
  tg.run([&] {
    while (!release.load()) std::this_thread::yield();
    g.replay(&ca);  // pool may be busy with the main replay: runs inline
  });
  release.store(true);
  for (int rep = 0; rep < 100; ++rep) g.replay(&cm);
  tg.wait();
  for (std::size_t l = 0; l < 32; ++l) {
    ASSERT_EQ(v_async[l], 2 * (int(l) + 1000));
    ASSERT_EQ(v_main[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, ConcurrentReplayFromTwoThreadsBothComplete) {
  // Two external threads (ThreadComm ranks) replay the same graph against
  // their own contexts: one wins the pool, the other runs serially inline.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  exec::TaskGraph g;
  build_stage_graph(g, 64);
  std::vector<int> va(64), vb(64);
  StageCtx ca{&va}, cb{&vb};
  std::thread ta([&] { for (int r = 0; r < 50; ++r) g.replay(&ca); });
  std::thread tb([&] { for (int r = 0; r < 50; ++r) g.replay(&cb); });
  ta.join();
  tb.join();
  for (std::size_t l = 0; l < 64; ++l) {
    ASSERT_EQ(va[l], 2 * (int(l) + 1000));
    ASSERT_EQ(vb[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, NodeExceptionPropagatesAndGraphStaysReusable) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    std::atomic<int> ran{0};
    exec::TaskGraph g;
    auto a = g.add_node([&](void*) { ran.fetch_add(1); });
    auto b = g.add_node([](void*) { throw std::runtime_error("node failed"); });
    auto c = g.add_node([&](void*) { ran.fetch_add(1); });
    g.add_edge(a, b);
    g.add_edge(b, c);  // never runs: its predecessor throws
    g.seal();
    EXPECT_THROW(g.replay(nullptr), std::runtime_error);
    // Reusable afterwards; the failing node keeps failing deterministically.
    EXPECT_THROW(g.replay(nullptr), std::runtime_error);
    EXPECT_GE(ran.load(), 2);  // `a` ran in both replays; `c` never did
  }
}

TEST(TaskGraph, BuildValidation) {
  exec::TaskGraph g;
  auto a = g.add_node([](void*) {});
  auto b = g.add_node([](void*) {});
  EXPECT_ANY_THROW(g.add_edge(b, a));  // edges must go low -> high id
  EXPECT_ANY_THROW(g.add_edge(a, 99));
  EXPECT_ANY_THROW(g.replay(nullptr));  // not sealed yet
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate edges are legal and deduped at seal()
  g.seal();
  g.replay(nullptr);
  EXPECT_ANY_THROW(g.add_node([](void*) {}));  // sealed
}

// ---- Graph-backed FFT / Fock width sweep --------------------------------

TEST(TaskGraphFft, GraphAndForkJoinBitIdenticalAcrossWidths) {
  // The dispatch-path contract: the cached-graph replay and the per-pass
  // fork-join path run the identical serial line kernel, so batched
  // transforms are byte-for-byte equal across paths and engine widths.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  const std::size_t n = 12, nb = 5;
  fft::Fft3D graph_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kTaskGraph);
  fft::Fft3D fork_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kForkJoin);
  Rng rng(41);
  std::vector<Complex> init(n * n * n * nb);
  for (auto& x : init) x = rng.complex_normal();

  std::vector<Complex> ref;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    for (const fft::Fft3D* fft : {&graph_fft, &fork_fft}) {
      std::vector<Complex> data = init;
      fft->forward_many(data.data(), nb);
      fft->inverse_many(data.data(), nb);
      if (ref.empty()) {
        ref = data;
      } else {
        ASSERT_EQ(0, std::memcmp(ref.data(), data.data(), data.size() * sizeof(Complex)))
            << "path " << (fft->path() == fft::ExecPath::kTaskGraph ? "graph" : "forkjoin")
            << " nt " << nt;
      }
    }
  }
}

TEST(TaskGraphFock, DispatchPathsBitIdenticalAcrossWidths) {
  // End-to-end through the Fock window loop: its batched pair solves replay
  // cached graphs keyed by block shape; the result must be byte-identical
  // to the fork-join dispatch at widths 1/2/4.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  const std::size_t nb = 8;
  Rng rng(43);
  CMatrix phi(setup.n_g(), nb);
  for (std::size_t i = 0; i < phi.size(); ++i) phi.data()[i] = rng.complex_normal();
  CMatrix s = linalg::overlap(phi, phi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(phi, s);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    for (const auto path : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
      ham::FockOptions fopt;
      fopt.fft_dispatch = path;
      ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
      fock.set_orbitals(phi, occ, bands, comm);
      CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
      fock.apply_add(phi, y, comm);
      if (ref.empty()) {
        ref = y;
      } else {
        ASSERT_EQ(0, std::memcmp(ref.data(), y.data(), y.size() * sizeof(Complex)))
            << "path " << (path == fft::ExecPath::kTaskGraph ? "graph" : "forkjoin")
            << " nt " << nt;
      }
    }
  }
}

TEST(Workspace, BuffersAreStableAndReused) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 1000);
  const Complex* p0 = a.data();
  a[999] = Complex{1.0, 2.0};
  // Same slot, same or smaller size: same storage, no allocation.
  auto b = ws.cbuf(exec::Slot::grid_a, 500);
  EXPECT_EQ(b.data(), p0);
  // Growth may move, but content capacity never shrinks.
  auto c = ws.cbuf(exec::Slot::grid_a, 2000);
  EXPECT_GE(c.size(), 2000u);
  auto d = ws.cbuf(exec::Slot::grid_a, 1000);
  EXPECT_EQ(d.data(), c.data());
}

TEST(Workspace, SlotsNeverAlias) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 64);
  auto b = ws.cbuf(exec::Slot::grid_b, 64);
  EXPECT_NE(a.data(), b.data());
  auto ra = ws.rbuf(exec::Slot::grid_a, 64);
  EXPECT_NE(static_cast<const void*>(ra.data()), static_cast<const void*>(a.data()));
}

TEST(Workspace, CmatKeepsCapacityAcrossReshape) {
  auto& ws = exec::workspace();
  CMatrix& m = ws.cmat(exec::Slot::cn_r, 100, 10);
  m(99, 9) = Complex{3.0, 0.0};
  const Complex* p0 = m.data();
  CMatrix& m2 = ws.cmat(exec::Slot::cn_r, 10, 100);  // same element count
  EXPECT_EQ(&m, &m2);
  EXPECT_EQ(m2.data(), p0);
  EXPECT_EQ(m2.rows(), 10u);
  EXPECT_EQ(m2.cols(), 100u);
}

TEST(Workspace, PerThreadIsolation) {
  auto& main_ws = exec::workspace();
  auto main_buf = main_ws.cbuf(exec::Slot::coeffs_a, 128);
  const void* other = nullptr;
  std::thread t([&] { other = exec::workspace().cbuf(exec::Slot::coeffs_a, 128).data(); });
  t.join();
  EXPECT_NE(other, static_cast<const void*>(main_buf.data()));
}

TEST(Workspace, BytesReservedGrowsMonotonically) {
  auto& ws = exec::workspace();
  const std::size_t before = ws.bytes_reserved();
  // A slot no other test in this binary touches, so the expected growth is
  // the full request regardless of suite order.
  ws.cbuf(exec::Slot::rk4_k4, 1 << 16);
  EXPECT_GE(ws.bytes_reserved(), before + (1 << 16) * sizeof(Complex));
}

}  // namespace
}  // namespace pwdft
