#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/exec.hpp"
#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "grid/transforms.hpp"
#include "ham/density.hpp"
#include "ham/fock.hpp"
#include "ham/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"

namespace pwdft {
namespace {

/// Restores the engine width on scope exit so tests compose.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    const std::size_t n = 10007;  // prime: exercises ragged chunking
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    exec::parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " nt=" << nt;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  exec::parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, GrainIsRespected) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<int> bad{0};
  const std::size_t n = 1000, grain = 64;
  exec::parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        // Every chunk except the ragged tail must have >= grain elements.
        if (e - b < grain && e != n) bad.fetch_add(1);
      },
      grain);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h.store(0);
  exec::parallel_for(16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      exec::parallel_for(16, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t k = ib; k < ie; ++k) hits[i * 16 + k].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionInChunkPropagatesAndPoolSurvives) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    EXPECT_THROW(
        exec::parallel_for(100,
                           [&](std::size_t b, std::size_t) {
                             if (b == 0) throw std::runtime_error("chunk failed");
                           }),
        std::runtime_error);
    // The engine must be reusable afterwards.
    std::atomic<int> sum{0};
    exec::parallel_for(10, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(sum.load(), 10);
  }
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  // Two external threads (the ThreadComm-ranks scenario) race for the pool;
  // the loser runs inline. Both must see full coverage.
  ThreadGuard guard;
  exec::set_num_threads(4);
  constexpr std::size_t n = 5000;
  std::vector<int> a(n, 0), b(n, 0);
  auto body = [n](std::vector<int>& v) {
    exec::parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) v[i] += 1;
    });
  };
  std::thread ta([&] { for (int rep = 0; rep < 50; ++rep) body(a); });
  std::thread tb([&] { for (int rep = 0; rep < 50; ++rep) body(b); });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a[i], 50);
    ASSERT_EQ(b[i], 50);
  }
}

TEST(ThreadPool, RunAsyncExecutesAndBlockingTasksDoNotStarveEachOther) {
  // Two tasks that can only finish together (a rendezvous) must run
  // concurrently — this is the prefetch-broadcast pattern of the Fock
  // operator across ThreadComm ranks.
  std::atomic<int> arrived{0};
  auto rendezvous = [&] {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  };
  auto f1 = exec::pool().run_async(rendezvous);
  auto f2 = exec::pool().run_async(rendezvous);
  f1.wait();
  f2.wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(TaskGroup, WaitJoinsAllTasks) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  for (int i = 0; i < 8; ++i) tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_TRUE(tg.empty());
  // The group is reusable after wait().
  tg.run([&] { done.fetch_add(1); });
  tg.wait();
  EXPECT_EQ(done.load(), 9);
}

TEST(TaskGroup, WaitRethrowsFirstErrorAfterJoiningEverything) {
  std::atomic<int> done{0};
  exec::TaskGroup tg;
  tg.run([&] { done.fetch_add(1); });
  tg.run([] { throw std::runtime_error("task failed"); });
  tg.run([&] { done.fetch_add(1); });
  EXPECT_THROW(tg.wait(), std::runtime_error);
  // Every non-throwing task ran to completion before wait() returned.
  EXPECT_EQ(done.load(), 2);
  EXPECT_TRUE(tg.empty());
}

TEST(TaskGroup, DestructorJoinsAndSwallowsErrors) {
  std::atomic<bool> ran{false};
  {
    exec::TaskGroup tg;
    tg.run([&] {
      ran.store(true);
      throw std::runtime_error("ignored by the destructor");
    });
  }  // must not terminate
  EXPECT_TRUE(ran.load());
}

TEST(TaskGroup, OverlapsWithParallelForOnTheCaller) {
  // The pipelining shape used by the Fock/transpose overlap: a blocking
  // async task in flight while the caller drives a fork-join loop.
  ThreadGuard guard;
  exec::set_num_threads(4);
  std::atomic<bool> release{false};
  std::atomic<int> sum{0};
  exec::TaskGroup tg;
  tg.run([&] {
    while (!release.load()) std::this_thread::yield();
  });
  exec::parallel_for(1000, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 1000);
  release.store(true);
  tg.wait();
}

TEST(ThreadPool, SetNumThreadsChangesSize) {
  ThreadGuard guard;
  exec::set_num_threads(3);
  EXPECT_EQ(exec::pool().size(), 3u);
  exec::set_num_threads(1);
  EXPECT_EQ(exec::pool().size(), 1u);
}

// ---- TaskGraph ----------------------------------------------------------

namespace {

/// Forces the parallel replay path even on single-core CI boxes (the
/// default policy would run graphs serially there), so the ready-ring and
/// dependency-counter machinery is actually exercised — and TSan-checked.
struct ParallelReplayGuard {
  ParallelReplayGuard() { exec::set_graph_serial_when_oversubscribed(false); }
  ~ParallelReplayGuard() { exec::set_graph_serial_when_oversubscribed(true); }
};

/// A three-stage pipeline graph over `lanes` independent chains:
/// stage 0 writes lane seed, stages 1 and 2 each add a constant reading the
/// previous stage's value — any dependency violation corrupts the result.
struct StageCtx {
  std::vector<int>* v;
};

void build_stage_graph(exec::TaskGraph& g, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    auto s0 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] = int(l); });
    auto s1 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] += 1000; });
    auto s2 = g.add_node([l](void* p) { (*static_cast<StageCtx*>(p)->v)[l] *= 2; });
    g.add_edge(s0, s1);
    g.add_edge(s1, s2);
  }
  g.seal();
}

}  // namespace

TEST(TaskGraph, ExecutesAllNodesRespectingEdgesAtAnyWidth) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    const std::size_t lanes = 97;
    exec::TaskGraph g;
    build_stage_graph(g, lanes);
    std::vector<int> v(lanes, -1);
    StageCtx ctx{&v};
    g.replay(&ctx);
    for (std::size_t l = 0; l < lanes; ++l)
      ASSERT_EQ(v[l], 2 * (int(l) + 1000)) << "lane " << l << " nt " << nt;
  }
}

TEST(TaskGraph, DiamondDependencyJoinsBothBranches) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  // a -> {b, c} -> d: d must observe both branch writes.
  std::atomic<int> a{0}, b{0}, c{0}, join_ok{0};
  exec::TaskGraph g;
  auto na = g.add_node([&](void*) { a.store(1); });
  auto nb = g.add_node([&](void*) { b.store(a.load() + 1); });
  auto nc = g.add_node([&](void*) { c.store(a.load() + 2); });
  auto nd = g.add_node([&](void*) { join_ok.store(b.load() == 2 && c.load() == 3); });
  g.add_edge(na, nb);
  g.add_edge(na, nc);
  g.add_edge(nb, nd);
  g.add_edge(nc, nd);
  g.seal();
  for (int rep = 0; rep < 50; ++rep) {
    a = b = c = join_ok = 0;
    g.replay(nullptr);
    ASSERT_EQ(join_ok.load(), 1) << "rep " << rep;
  }
}

TEST(TaskGraph, ReplayIsReusableAcrossContextsAndCoexistingShapes) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  // Two graphs of different shapes replayed alternately against distinct
  // contexts — the reuse pattern of the Fft3D graph cache (one graph per
  // batch shape, many data sets).
  exec::TaskGraph small, big;
  build_stage_graph(small, 3);
  build_stage_graph(big, 64);
  std::vector<int> va(3), vb(64), vc(3);
  StageCtx ca{&va}, cb{&vb}, cc{&vc};
  for (int rep = 0; rep < 10; ++rep) {
    small.replay(&ca);
    big.replay(&cb);
    small.replay(&cc);
    for (std::size_t l = 0; l < 3; ++l) {
      ASSERT_EQ(va[l], 2 * (int(l) + 1000));
      ASSERT_EQ(vc[l], 2 * (int(l) + 1000));
    }
    for (std::size_t l = 0; l < 64; ++l) ASSERT_EQ(vb[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, ReplayFromAsyncLaneRunsInlineWithoutStealingThePool) {
  // The overlap contract extended to graphs: a replay issued from an
  // async-lane task must not win the pool away from the caller's compute.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  exec::TaskGraph g;
  build_stage_graph(g, 32);
  std::vector<int> v_async(32), v_main(32);
  StageCtx ca{&v_async}, cm{&v_main};
  exec::TaskGroup tg;
  std::atomic<bool> release{false};
  tg.run([&] {
    while (!release.load()) std::this_thread::yield();
    g.replay(&ca);  // pool may be busy with the main replay: runs inline
  });
  release.store(true);
  for (int rep = 0; rep < 100; ++rep) g.replay(&cm);
  tg.wait();
  for (std::size_t l = 0; l < 32; ++l) {
    ASSERT_EQ(v_async[l], 2 * (int(l) + 1000));
    ASSERT_EQ(v_main[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, ConcurrentReplayFromTwoThreadsBothComplete) {
  // Two external threads (ThreadComm ranks) replay the same graph against
  // their own contexts: one wins the pool, the other runs serially inline.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  exec::TaskGraph g;
  build_stage_graph(g, 64);
  std::vector<int> va(64), vb(64);
  StageCtx ca{&va}, cb{&vb};
  std::thread ta([&] { for (int r = 0; r < 50; ++r) g.replay(&ca); });
  std::thread tb([&] { for (int r = 0; r < 50; ++r) g.replay(&cb); });
  ta.join();
  tb.join();
  for (std::size_t l = 0; l < 64; ++l) {
    ASSERT_EQ(va[l], 2 * (int(l) + 1000));
    ASSERT_EQ(vb[l], 2 * (int(l) + 1000));
  }
}

TEST(TaskGraph, NodeExceptionPropagatesAndGraphStaysReusable) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    std::atomic<int> ran{0};
    exec::TaskGraph g;
    auto a = g.add_node([&](void*) { ran.fetch_add(1); });
    auto b = g.add_node([](void*) { throw std::runtime_error("node failed"); });
    auto c = g.add_node([&](void*) { ran.fetch_add(1); });
    g.add_edge(a, b);
    g.add_edge(b, c);  // never runs: its predecessor throws
    g.seal();
    EXPECT_THROW(g.replay(nullptr), std::runtime_error);
    // Reusable afterwards; the failing node keeps failing deterministically.
    EXPECT_THROW(g.replay(nullptr), std::runtime_error);
    EXPECT_GE(ran.load(), 2);  // `a` ran in both replays; `c` never did
  }
}

TEST(TaskGraph, RawNodePayloadsAndGates) {
  // The raw-pointer node form: one static trampoline + a packed payload per
  // node (the shape fft3d's pipeline hooks use), joined by a gate.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    struct Ctx {
      std::array<int, 8> slot{};
      std::atomic<int> after_gate{0};
    } ctx;
    exec::TaskGraph g;
    std::vector<exec::TaskGraph::NodeId> writers;
    for (std::uint64_t i = 0; i < 8; ++i)
      writers.push_back(g.add_node(
          [](void* p, std::uint64_t payload) {
            static_cast<Ctx*>(p)->slot[payload] = static_cast<int>(payload) + 1;
          },
          i));
    const auto gate = g.add_gate(writers);
    const auto check = g.add_node([](void* p) {
      auto* c = static_cast<Ctx*>(p);
      int sum = 0;
      for (int v : c->slot) sum += v;
      c->after_gate.store(sum);
    });
    g.add_edge(gate, check);
    g.seal();
    g.replay(&ctx);
    EXPECT_EQ(ctx.after_gate.load(), 36) << "nt=" << nt;  // 1+2+...+8
  }
}

TEST(TaskGraph, BuildValidation) {
  exec::TaskGraph g;
  auto a = g.add_node([](void*) {});
  auto b = g.add_node([](void*) {});
  EXPECT_ANY_THROW(g.add_edge(b, a));  // edges must go low -> high id
  EXPECT_ANY_THROW(g.add_edge(a, 99));
  EXPECT_ANY_THROW(g.replay(nullptr));  // not sealed yet
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate edges are legal and deduped at seal()
  g.seal();
  g.replay(nullptr);
  EXPECT_ANY_THROW(g.add_node([](void*) {}));  // sealed
}

// ---- Graph-backed FFT / Fock width sweep --------------------------------

TEST(TaskGraphFft, GraphAndForkJoinBitIdenticalAcrossWidths) {
  // The dispatch-path contract: the cached-graph replay and the per-pass
  // fork-join path run the identical serial line kernel, so batched
  // transforms are byte-for-byte equal across paths and engine widths.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  const std::size_t n = 12, nb = 5;
  fft::Fft3D graph_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kTaskGraph);
  fft::Fft3D fork_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kForkJoin);
  Rng rng(41);
  std::vector<Complex> init(n * n * n * nb);
  for (auto& x : init) x = rng.complex_normal();

  std::vector<Complex> ref;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    for (const fft::Fft3D* fft : {&graph_fft, &fork_fft}) {
      std::vector<Complex> data = init;
      fft->forward_many(data.data(), nb);
      fft->inverse_many(data.data(), nb);
      if (ref.empty()) {
        ref = data;
      } else {
        ASSERT_EQ(0, std::memcmp(ref.data(), data.data(), data.size() * sizeof(Complex)))
            << "path " << (fft->path() == fft::ExecPath::kTaskGraph ? "graph" : "forkjoin")
            << " nt " << nt;
      }
    }
  }
}

TEST(TaskGraphFock, DispatchPathsBitIdenticalAcrossWidths) {
  // End-to-end through the Fock window loop: its batched pair solves replay
  // cached graphs keyed by block shape; the result must be byte-identical
  // to the fork-join dispatch at widths 1/2/4.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  const std::size_t nb = 8;
  Rng rng(43);
  CMatrix phi(setup.n_g(), nb);
  for (std::size_t i = 0; i < phi.size(); ++i) phi.data()[i] = rng.complex_normal();
  CMatrix s = linalg::overlap(phi, phi);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(phi, s);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (std::size_t nt : {1u, 2u, 4u}) {
    exec::set_num_threads(nt);
    for (const auto path : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
      ham::FockOptions fopt;
      fopt.fft_dispatch = path;
      ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
      fock.set_orbitals(phi, occ, bands, comm);
      CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
      fock.apply_add(phi, y, comm);
      if (ref.empty()) {
        ref = y;
      } else {
        ASSERT_EQ(0, std::memcmp(ref.data(), y.data(), y.size() * sizeof(Complex)))
            << "path " << (path == fft::ExecPath::kTaskGraph ? "graph" : "forkjoin")
            << " nt " << nt;
      }
    }
  }
}

// ---- Whole-operator pipelines & graph-cache identity ---------------------

namespace {

/// Per-call state of the direct run_pipeline tests below. Hooks are
/// captureless lambdas (so they decay to the BatchHook function pointers
/// the graph cache keys on).
struct PipeTestCtx {
  std::array<double, 8> v{};
  std::array<double, 3> out{};
};

}  // namespace

TEST(OperatorPipeline, ChainAndJoinSemantics) {
  // Stage::chain serializes consecutive runs in batch order (batch b reads
  // b-1's value — any order violation corrupts it) and a trailing join runs
  // only after every batch finished. Pure hook/join pipeline, both dispatch
  // paths, widths 1/4.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  const auto chain_hook = +[](void* u, std::size_t b) {
    auto* c = static_cast<PipeTestCtx*>(u);
    c->v[b] = b % 2 == 0 ? static_cast<double>(b + 1) : c->v[b - 1] * 3.0;
  };
  const auto join_hook = +[](void* u, std::size_t j) {
    auto* c = static_cast<PipeTestCtx*>(u);
    const std::size_t per = 3;  // ceil(8 / 3 jobs)
    double acc = 0.0;
    for (std::size_t i = j * per; i < std::min<std::size_t>(8, (j + 1) * per); ++i)
      acc += c->v[i];
    c->out[j] = acc;
  };
  for (std::size_t nt : {1u, 4u}) {
    exec::set_num_threads(nt);
    for (const auto path : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
      fft::Fft3D fft({4, 4, 4}, fft::RadixKernel::kAuto, path);
      PipeTestCtx ctx;
      const std::array<fft::Fft3D::Stage, 2> stages = {
          fft::Fft3D::Stage::make_hook(chain_hook, &ctx, 2),
          fft::Fft3D::Stage::make_join(join_hook, &ctx, 3)};
      for (int rep = 0; rep < 20; ++rep) {
        ctx = PipeTestCtx{};
        fft.run_pipeline(8, stages);
        const std::array<double, 8> want = {1, 3, 3, 9, 5, 15, 7, 21};
        for (std::size_t b = 0; b < 8; ++b) ASSERT_EQ(ctx.v[b], want[b]) << "b=" << b;
        ASSERT_EQ(ctx.out[0], 7.0);
        ASSERT_EQ(ctx.out[1], 29.0);
        ASSERT_EQ(ctx.out[2], 28.0);
      }
    }
  }
}

TEST(OperatorPipeline, NarrowHamiltonianApplyIsOneWake) {
  // The acceptance contract of the fused pipeline: a narrow (band×line
  // split) Hamiltonian::apply is ONE TaskGraph replay — a single pool wake,
  // no range jobs.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::HamiltonianOptions opt;
  opt.hybrid.enabled = false;
  opt.fft_dispatch = fft::ExecPath::kTaskGraph;
  opt.op_pipeline = fft::PipelineMode::kFused;
  ham::Hamiltonian h(setup, species, opt);
  par::SerialComm comm;
  Rng rng(71);
  CMatrix psi(setup.n_g(), 2);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = rng.complex_normal();
  CMatrix y;
  h.apply(psi, y, comm);  // warm-up: builds the cached graph, grows arenas
  const std::uint64_t g0 = exec::pool().graph_jobs();
  const std::uint64_t r0 = exec::pool().range_jobs();
  h.apply(psi, y, comm);
  EXPECT_EQ(exec::pool().graph_jobs() - g0, 1u);
  EXPECT_EQ(exec::pool().range_jobs() - r0, 0u);
}

TEST(OperatorPipeline, NarrowDensityIsOneWake) {
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  fft::Fft3D fft_dense(setup.dense_grid.dims(), fft::RadixKernel::kAuto,
                       fft::ExecPath::kTaskGraph);
  Rng rng(73);
  CMatrix psi(setup.n_g(), 2);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = rng.complex_normal();
  std::vector<double> occ(2, 2.0);
  par::SerialComm comm;
  (void)ham::compute_density(setup, fft_dense, psi, occ, comm, true,
                             fft::PipelineMode::kFused);  // warm-up
  const std::uint64_t g0 = exec::pool().graph_jobs();
  const std::uint64_t r0 = exec::pool().range_jobs();
  auto rho = ham::compute_density(setup, fft_dense, psi, occ, comm, true,
                                  fft::PipelineMode::kFused);
  EXPECT_EQ(exec::pool().graph_jobs() - g0, 1u);
  EXPECT_EQ(exec::pool().range_jobs() - r0, 0u);
  // And it matches the staged formulation byte for byte.
  auto rho_staged = ham::compute_density(setup, fft_dense, psi, occ, comm, true,
                                         fft::PipelineMode::kStaged);
  ASSERT_EQ(rho.size(), rho_staged.size());
  for (std::size_t i = 0; i < rho.size(); ++i) ASSERT_EQ(rho[i], rho_staged[i]) << "i=" << i;
}

TEST(GraphCache, DistinguishesLineMaskContent) {
  // Two SphereMaps with equal mask lengths but different line content,
  // alternated through one Fft3D: a cache that keyed on shape alone would
  // replay the wrong (stale) line set. Every conversion is checked against
  // an independent fork-join engine.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  const std::size_t n = 8, grid_n = n * n * n;
  fft::Fft3D graph_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kTaskGraph);
  fft::Fft3D fork_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kForkJoin);
  std::vector<std::size_t> lower(grid_n / 2), upper(grid_n / 2);
  for (std::size_t i = 0; i < grid_n / 2; ++i) {
    lower[i] = i;
    upper[i] = grid_n / 2 + i;
  }
  grid::SphereMap sm_lower(lower, {n, n, n});
  grid::SphereMap sm_upper(upper, {n, n, n});
  ASSERT_EQ(sm_lower.x_lines.size(), sm_upper.x_lines.size());
  ASSERT_NE(sm_lower.x_lines, sm_upper.x_lines);
  Rng rng(79);
  std::vector<Complex> coeffs(grid_n / 2);
  for (auto& c : coeffs) c = rng.complex_normal();
  std::vector<Complex> a(grid_n), b(grid_n);
  for (const auto* sm : {&sm_lower, &sm_upper, &sm_lower, &sm_upper}) {
    grid::sphere_to_grid(graph_fft, *sm, coeffs, a);
    grid::sphere_to_grid(fork_fft, *sm, coeffs, b);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)));
  }
}

namespace {

/// Prologue hooks for the hook-identity cache test: same shape, different
/// function — must map to distinct cached graphs.
struct FillCtx {
  Complex* data;
  std::size_t n;
};
void fill_plus(void* u, std::size_t b) {
  const auto* c = static_cast<const FillCtx*>(u);
  for (std::size_t i = 0; i < c->n; ++i) c->data[b * c->n + i] = Complex(double(b + 1), 0.0);
}
void fill_minus(void* u, std::size_t b) {
  const auto* c = static_cast<const FillCtx*>(u);
  for (std::size_t i = 0; i < c->n; ++i) c->data[b * c->n + i] = Complex(-double(b + 1), 0.0);
}

}  // namespace

TEST(GraphCache, DistinguishesHookAndStageIdentity) {
  // Identical batch shape and masks, two different prologue hooks, plus a
  // pipeline with an extra interior stage: three distinct cached graphs.
  // Stale replay of any of them against the wrong hook/stage list would
  // produce the wrong sign or skip the negation.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  const std::size_t n = 6, grid_n = n * n * n, nb = 3;
  fft::Fft3D graph_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kTaskGraph);
  fft::Fft3D fork_fft({n, n, n}, fft::RadixKernel::kAuto, fft::ExecPath::kForkJoin);
  std::vector<Complex> a(grid_n * nb), b(grid_n * nb);
  // All-lines masks: the hook-fill contract is trivially satisfied.
  std::vector<std::uint32_t> all_x(n * n), all_y(n * n);
  for (std::size_t i = 0; i < n * n; ++i) all_x[i] = all_y[i] = std::uint32_t(i);
  FillCtx ca{a.data(), grid_n}, cb{b.data(), grid_n};
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto hook : {&fill_plus, &fill_minus}) {
      graph_fft.inverse_many_active(a.data(), nb, all_x, all_y, *hook, &ca);
      fork_fft.inverse_many_active(b.data(), nb, all_x, all_y, *hook, &cb);
      ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)));
    }
    // Same shape with an extra interior negation stage (run_pipeline): must
    // not collide with the two-stage graphs above.
    const auto negate = +[](void* u, std::size_t batch) {
      const auto* c = static_cast<const FillCtx*>(u);
      for (std::size_t i = 0; i < c->n; ++i) c->data[batch * c->n + i] *= -1.0;
    };
    const std::array<fft::Fft3D::PassSpec, 3> passes = {
        fft::Fft3D::PassSpec{all_x.data(), all_x.size()},
        fft::Fft3D::PassSpec{all_y.data(), all_y.size()},
        fft::Fft3D::PassSpec{nullptr, n * n}};
    const std::array<fft::Fft3D::Stage, 3> st_a = {
        fft::Fft3D::Stage::make_hook(&fill_plus, &ca),
        fft::Fft3D::Stage::make_hook(negate, &ca),
        fft::Fft3D::Stage::make_passes(+1, a.data(), passes)};
    const std::array<fft::Fft3D::Stage, 3> st_b = {
        fft::Fft3D::Stage::make_hook(&fill_plus, &cb),
        fft::Fft3D::Stage::make_hook(negate, &cb),
        fft::Fft3D::Stage::make_passes(+1, b.data(), passes)};
    graph_fft.run_pipeline(nb, st_a);
    fork_fft.run_pipeline(nb, st_b);
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)));
  }
}

TEST(GraphCache, HamiltonianCacheKeySweep) {
  // Alternating band counts through one Hamiltonian: each block width is
  // its own pipeline graph; replaying a stale shape would transform the
  // wrong batch count. Every fused apply is checked against a staged-mode
  // Hamiltonian sharing the same state.
  ThreadGuard guard;
  ParallelReplayGuard preplay;
  exec::set_num_threads(4);
  ham::PlanewaveSetup setup(crystal::Crystal::silicon_supercell(1, 1, 1), 4.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::HamiltonianOptions fused_opt;
  fused_opt.hybrid.enabled = false;
  fused_opt.fft_dispatch = fft::ExecPath::kTaskGraph;
  fused_opt.op_pipeline = fft::PipelineMode::kFused;
  ham::HamiltonianOptions staged_opt = fused_opt;
  staged_opt.op_pipeline = fft::PipelineMode::kStaged;
  ham::Hamiltonian h_fused(setup, species, fused_opt);
  ham::Hamiltonian h_staged(setup, species, staged_opt);
  par::SerialComm comm;
  Rng rng(83);
  CMatrix psi3(setup.n_g(), 3);
  for (std::size_t i = 0; i < psi3.size(); ++i) psi3.data()[i] = rng.complex_normal();
  CMatrix y_fused, y_staged;
  for (const std::size_t nb : {2u, 3u, 2u, 3u, 2u}) {
    CMatrix psi(setup.n_g(), nb);
    for (std::size_t j = 0; j < nb; ++j)
      std::copy_n(psi3.col(j), setup.n_g(), psi.col(j));
    h_fused.apply(psi, y_fused, comm);
    h_staged.apply(psi, y_staged, comm);
    ASSERT_EQ(0, std::memcmp(y_fused.data(), y_staged.data(),
                             y_fused.size() * sizeof(Complex)))
        << "nb=" << nb;
  }
}

TEST(Workspace, BuffersAreStableAndReused) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 1000);
  const Complex* p0 = a.data();
  a[999] = Complex{1.0, 2.0};
  // Same slot, same or smaller size: same storage, no allocation.
  auto b = ws.cbuf(exec::Slot::grid_a, 500);
  EXPECT_EQ(b.data(), p0);
  // Growth may move, but content capacity never shrinks.
  auto c = ws.cbuf(exec::Slot::grid_a, 2000);
  EXPECT_GE(c.size(), 2000u);
  auto d = ws.cbuf(exec::Slot::grid_a, 1000);
  EXPECT_EQ(d.data(), c.data());
}

TEST(Workspace, SlotsNeverAlias) {
  auto& ws = exec::workspace();
  auto a = ws.cbuf(exec::Slot::grid_a, 64);
  auto b = ws.cbuf(exec::Slot::grid_b, 64);
  EXPECT_NE(a.data(), b.data());
  auto ra = ws.rbuf(exec::Slot::grid_a, 64);
  EXPECT_NE(static_cast<const void*>(ra.data()), static_cast<const void*>(a.data()));
}

TEST(Workspace, CmatKeepsCapacityAcrossReshape) {
  auto& ws = exec::workspace();
  CMatrix& m = ws.cmat(exec::Slot::cn_r, 100, 10);
  m(99, 9) = Complex{3.0, 0.0};
  const Complex* p0 = m.data();
  CMatrix& m2 = ws.cmat(exec::Slot::cn_r, 10, 100);  // same element count
  EXPECT_EQ(&m, &m2);
  EXPECT_EQ(m2.data(), p0);
  EXPECT_EQ(m2.rows(), 10u);
  EXPECT_EQ(m2.cols(), 100u);
}

TEST(Workspace, PerThreadIsolation) {
  auto& main_ws = exec::workspace();
  auto main_buf = main_ws.cbuf(exec::Slot::coeffs_a, 128);
  const void* other = nullptr;
  std::thread t([&] { other = exec::workspace().cbuf(exec::Slot::coeffs_a, 128).data(); });
  t.join();
  EXPECT_NE(other, static_cast<const void*>(main_buf.data()));
}

TEST(Workspace, BytesReservedGrowsMonotonically) {
  auto& ws = exec::workspace();
  const std::size_t before = ws.bytes_reserved();
  // A slot no other test in this binary touches, so the expected growth is
  // the full request regardless of suite order.
  ws.cbuf(exec::Slot::rk4_k4, 1 << 16);
  EXPECT_GE(ws.bytes_reserved(), before + (1 << 16) * sizeof(Complex));
}

}  // namespace
}  // namespace pwdft
