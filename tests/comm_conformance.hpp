#pragma once

/// \file comm_conformance.hpp
/// Cross-backend Comm conformance harness.
///
/// Every check runs the same rank function over any backend and compares
/// collective results BITWISE against an expectation each rank computes
/// locally from (rank, size) alone — the fold order is pinned to the
/// ThreadComm contract (zero-initialized accumulator, contributions added
/// in rank order 0..P-1), so Serial, Thread, and Socket backends must all
/// produce identical bits or the check fails.
///
/// New Comm backends must pass every check in this header (swept over the
/// rank counts in test_socket_comm.cpp) before anything else may use them;
/// docs/threading.md carries the checklist item.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "parallel/comm.hpp"
#include "parallel/hier_comm.hpp"
#include "parallel/socket_comm.hpp"
#include "parallel/thread_comm.hpp"

namespace pwdft::test {

enum class CommBackend { kSerial, kThread, kSocket };

inline const char* backend_name(CommBackend b) {
  switch (b) {
    case CommBackend::kSerial: return "serial";
    case CommBackend::kThread: return "thread";
    case CommBackend::kSocket: return "socket";
  }
  return "?";
}

/// Runs `fn` on every rank of an np-wide communicator of the given
/// backend. Socket ranks are forked processes whose gtest failures are
/// invisible to the parent, so the wrapper converts any EXPECT failure
/// into a nonzero child exit, which SocketGroup::run turns into a parent
/// test failure.
inline void run_backend(CommBackend b, int np, const std::function<void(par::Comm&)>& fn,
                        int timeout_sec = 120) {
  switch (b) {
    case CommBackend::kSerial: {
      ASSERT_EQ(np, 1) << "serial backend is single-rank by definition";
      par::SerialComm c;
      fn(c);
      return;
    }
    case CommBackend::kThread:
      par::ThreadGroup::run(np, fn);
      return;
    case CommBackend::kSocket:
      par::SocketGroup::run(
          np,
          [&](par::Comm& c) {
            fn(c);
            if (::testing::Test::HasFailure())
              throw Error("conformance expectation failed in forked rank");
          },
          timeout_sec);
      return;
  }
}

// --- bitwise comparison helpers --------------------------------------------

inline std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

#define PWDFT_EXPECT_BITEQ(a, b) \
  EXPECT_EQ(pwdft::test::bits_of(a), pwdft::test::bits_of(b)) << "values " << (a) << " vs " << (b)

/// Deterministic per-(rank, index) test signal; irrational-ish factors so
/// no two ranks contribute identical values and reassociation shows up.
inline double signal(int rank, std::size_t i) {
  return std::sin(0.7 * static_cast<double>(i) + 1.3 * (rank + 1)) *
         (1.0 + 0.01 * static_cast<double>(rank));
}

inline unsigned char byte_signal(int rank, std::size_t i) {
  return static_cast<unsigned char>((31 * rank + 17 * static_cast<int>(i) + 5) & 0xff);
}

// --- collective checks ------------------------------------------------------
// Each check is callable on any Comm (any backend, any rank of it).

inline void check_allreduce_double(par::Comm& c, std::size_t count = 257) {
  std::vector<double> data(count), expect(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) data[i] = signal(c.rank(), i);
  for (int r = 0; r < c.size(); ++r)
    for (std::size_t i = 0; i < count; ++i) expect[i] += signal(r, i);
  c.allreduce_sum(data.data(), count);
  for (std::size_t i = 0; i < count; ++i) PWDFT_EXPECT_BITEQ(data[i], expect[i]);
}

inline void check_allreduce_complex(par::Comm& c, std::size_t count = 131) {
  std::vector<Complex> data(count), expect(count, Complex{});
  for (std::size_t i = 0; i < count; ++i)
    data[i] = Complex(signal(c.rank(), i), signal(c.rank(), i + count));
  for (int r = 0; r < c.size(); ++r)
    for (std::size_t i = 0; i < count; ++i)
      expect[i] += Complex(signal(r, i), signal(r, i + count));
  c.allreduce_sum(data.data(), count);
  for (std::size_t i = 0; i < count; ++i) {
    PWDFT_EXPECT_BITEQ(data[i].real(), expect[i].real());
    PWDFT_EXPECT_BITEQ(data[i].imag(), expect[i].imag());
  }
}

inline void check_bcast(par::Comm& c, std::size_t bytes = 613) {
  for (int root = 0; root < c.size(); ++root) {
    std::vector<unsigned char> buf(bytes, 0);
    if (c.rank() == root)
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = byte_signal(root, i);
    c.bcast_bytes(buf.data(), bytes, root);
    for (std::size_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(buf[i], byte_signal(root, i)) << "root " << root << " byte " << i;
    }
  }
}

inline void check_allgatherv(par::Comm& c) {
  const int np = c.size();
  const auto count_of = [](int r) { return static_cast<std::size_t>(3 * r + 1); };
  std::vector<std::size_t> counts(np), displs(np);
  std::size_t total = 0;
  for (int r = 0; r < np; ++r) {
    counts[r] = count_of(r);
    displs[r] = total + static_cast<std::size_t>(2 * r);  // gaps: displs are honored, not assumed
    total = displs[r] + counts[r];
  }
  std::vector<unsigned char> mine(counts[c.rank()]);
  for (std::size_t i = 0; i < mine.size(); ++i) mine[i] = byte_signal(c.rank(), i);
  std::vector<unsigned char> recv(total, 0xee);
  c.allgatherv_bytes(mine.data(), mine.size(), recv.data(), counts.data(), displs.data());
  for (int r = 0; r < np; ++r)
    for (std::size_t i = 0; i < counts[r]; ++i) {
      ASSERT_EQ(recv[displs[r] + i], byte_signal(r, i)) << "rank " << r << " byte " << i;
    }
}

inline void check_alltoallv(par::Comm& c) {
  const int np = c.size();
  const auto pair_count = [](int src, int dst) {
    return static_cast<std::size_t>(((3 * src + 5 * dst) % 4) + 1);
  };
  const auto pair_byte = [](int src, int dst, std::size_t i) {
    return static_cast<unsigned char>((src * 31 + dst * 17 + static_cast<int>(i)) & 0xff);
  };
  std::vector<std::size_t> sc(np), sd(np), rc(np), rd(np);
  std::size_t stot = 0, rtot = 0;
  for (int r = 0; r < np; ++r) {
    sc[r] = pair_count(c.rank(), r);
    sd[r] = stot;
    stot += sc[r];
    rc[r] = pair_count(r, c.rank());
    rd[r] = rtot;
    rtot += rc[r];
  }
  std::vector<unsigned char> send(stot), recv(rtot, 0xee);
  for (int r = 0; r < np; ++r)
    for (std::size_t i = 0; i < sc[r]; ++i) send[sd[r] + i] = pair_byte(c.rank(), r, i);
  c.alltoallv_bytes(send.data(), sc.data(), sd.data(), recv.data(), rc.data(), rd.data());
  for (int r = 0; r < np; ++r)
    for (std::size_t i = 0; i < rc[r]; ++i) {
      ASSERT_EQ(recv[rd[r] + i], pair_byte(r, c.rank(), i)) << "from rank " << r << " byte " << i;
    }
}

inline void check_barrier(par::Comm& c) {
  // Interleave with an allreduce so a desynchronized barrier (a rank
  // skipping ahead) would scramble the collective sequence and fail.
  for (int iter = 0; iter < 3; ++iter) {
    c.barrier();
    double v = static_cast<double>(c.rank() + iter);
    c.allreduce_sum(&v, 1);
    double expect = 0;
    for (int r = 0; r < c.size(); ++r) expect += static_cast<double>(r + iter);
    PWDFT_EXPECT_BITEQ(v, expect);
  }
}

inline void check_p2p(par::Comm& c) {
  if (c.size() < 2) return;
  const int next = (c.rank() + 1) % c.size();
  const int prev = (c.rank() + c.size() - 1) % c.size();
  // Ring pass with even ranks sending first: correct for both synchronous
  // (ThreadComm rendezvous) and buffered (SocketComm) send semantics.
  std::vector<unsigned char> out(64), in(64, 0);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = byte_signal(c.rank(), i);
  if (c.rank() % 2 == 0) {
    c.send_bytes(out.data(), out.size(), next, 7);
    c.recv_bytes(in.data(), in.size(), prev, 7);
  } else {
    c.recv_bytes(in.data(), in.size(), prev, 7);
    c.send_bytes(out.data(), out.size(), next, 7);
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(in[i], byte_signal(prev, i)) << "ring byte " << i;
  }
}

/// Buffered-send backends only (SocketComm): the receiver asks for tag 2
/// before tag 1, so the backend must park the out-of-order message. Do NOT
/// run this on ThreadComm, whose rendezvous send would deadlock by design.
inline void check_p2p_out_of_order(par::Comm& c) {
  if (c.size() < 2) return;
  if (c.rank() == 0) {
    unsigned char a = 0xaa, b = 0xbb;
    c.send_bytes(&a, 1, 1, /*tag=*/1);
    c.send_bytes(&b, 1, 1, /*tag=*/2);
  } else if (c.rank() == 1) {
    unsigned char a = 0, b = 0;
    c.recv_bytes(&b, 1, 0, /*tag=*/2);
    c.recv_bytes(&a, 1, 0, /*tag=*/1);
    EXPECT_EQ(a, 0xaa);
    EXPECT_EQ(b, 0xbb);
  }
}

inline void check_dup(par::Comm& c) {
  const std::unique_ptr<par::Comm> d = c.dup();
  ASSERT_EQ(d->rank(), c.rank());
  ASSERT_EQ(d->size(), c.size());
  // Interleaved collectives on parent and duplicate stay independent.
  double a = signal(c.rank(), 1), b = signal(c.rank(), 2);
  c.allreduce_sum(&a, 1);
  d->allreduce_sum(&b, 1);
  double ea = 0, eb = 0;
  for (int r = 0; r < c.size(); ++r) {
    ea += signal(r, 1);
    eb += signal(r, 2);
  }
  PWDFT_EXPECT_BITEQ(a, ea);
  PWDFT_EXPECT_BITEQ(b, eb);
}

inline void check_split(par::Comm& c) {
  const int np = c.size();
  const int color = c.rank() % 2;
  const int key = -c.rank();  // negative keys: members are ordered by key, so parent order reverses
  const std::unique_ptr<par::Comm> sub = c.split(color, key);
  std::vector<int> members;  // parent ranks of my color, in NEW rank order
  for (int r = np - 1; r >= 0; --r)
    if (r % 2 == color) members.push_back(r);
  const int nsub = static_cast<int>(members.size());
  ASSERT_EQ(sub->size(), nsub);
  int my_new = -1;
  for (int i = 0; i < nsub; ++i)
    if (members[i] == c.rank()) my_new = i;
  ASSERT_EQ(sub->rank(), my_new);
  // Collective within the split: fold order is new-rank order.
  double v = signal(c.rank(), 3);
  sub->allreduce_sum(&v, 1);
  double expect = 0;
  for (int i = 0; i < nsub; ++i) expect += signal(members[i], 3);
  PWDFT_EXPECT_BITEQ(v, expect);
}

/// dup()/split() offspring used from a second thread while the parent
/// communicator keeps running its own collectives — the TransposeOverlap
/// pattern. Streams must not interleave (satellite: ThreadComm coverage;
/// also run over SocketComm).
inline void check_concurrent_dup_collectives(par::Comm& c, int rounds = 16) {
  const std::unique_ptr<par::Comm> d = c.dup();
  std::vector<double> got(rounds);
  std::thread side([&] {
    for (int k = 0; k < rounds; ++k) {
      double v = signal(d->rank(), 100 + k);
      d->allreduce_sum(&v, 1);
      got[k] = v;
    }
  });
  for (int k = 0; k < rounds; ++k) {
    double v = signal(c.rank(), 200 + k);
    c.allreduce_sum(&v, 1);
    double expect = 0;
    for (int r = 0; r < c.size(); ++r) expect += signal(r, 200 + k);
    PWDFT_EXPECT_BITEQ(v, expect);
  }
  side.join();
  for (int k = 0; k < rounds; ++k) {
    double expect = 0;
    for (int r = 0; r < c.size(); ++r) expect += signal(r, 100 + k);
    PWDFT_EXPECT_BITEQ(got[k], expect);
  }
}

/// HierComm's staged ordered allreduce over any backend must match the
/// flat rank-order fold bit for bit.
inline void check_hier_allreduce(par::Comm& c, int band_groups, std::size_t count = 193) {
  if (c.size() % band_groups != 0) return;
  par::HierComm h(c, band_groups);
  std::vector<double> data(count), expect(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) data[i] = signal(c.rank(), i);
  for (int r = 0; r < c.size(); ++r)
    for (std::size_t i = 0; i < count; ++i) expect[i] += signal(r, i);
  h.allreduce_sum(data.data(), count);
  for (std::size_t i = 0; i < count; ++i) PWDFT_EXPECT_BITEQ(data[i], expect[i]);
}

/// The full sweep a new backend must pass (docs/threading.md checklist).
inline void check_all_collectives(par::Comm& c) {
  check_allreduce_double(c);
  check_allreduce_complex(c);
  check_bcast(c);
  check_allgatherv(c);
  check_alltoallv(c);
  check_barrier(c);
  check_p2p(c);
  check_dup(c);
  check_split(c);
}

}  // namespace pwdft::test
