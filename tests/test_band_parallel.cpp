// Proves the band-parallel determinism contract (docs/threading.md): the
// Fock apply, the density accumulation, the Hamiltonian apply, LOBPCG, and a
// full PT-CN step are bit-identical at 1/2/4 engine threads, and the
// overlapped transpose path of the PT-CN propagator produces exactly the
// same orbitals as the serialized one.

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "common/exec.hpp"
#include "ham/density.hpp"
#include "ham/fock.hpp"
#include "ham/hamiltonian.hpp"
#include "parallel/thread_comm.hpp"
#include "scf/lobpcg.hpp"
#include "td/field.hpp"
#include "td/ptcn.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

/// Restores the engine width on scope exit so tests compose.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

constexpr std::size_t kThreadCounts[] = {1, 2, 4};

TEST(BandParallel, FockApplyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 6;
  CMatrix phi = test::random_orthonormal(setup, nb, 31);
  std::vector<double> occ(nb, 2.0);
  occ[nb - 1] = 0.0;  // exercise the unoccupied-band skip in the reduction
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (std::size_t nt : kThreadCounts) {
    exec::set_num_threads(nt);
    ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11});
    fock.set_orbitals(phi, occ, bands, comm);
    CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
    fock.apply_add(phi, y, comm);
    if (nt == 1) {
      ref = y;
    } else {
      EXPECT_EQ(test::max_abs_diff(y, ref), 0.0) << "nt=" << nt;
    }
  }
}

TEST(BandParallel, FockApplyIndependentOfBandWindowAndBatchGrouping) {
  // The windowed reduction accumulates in exact band order, so the result
  // must not depend on the window size (and batch grouping only changes
  // which FFTs share a batch, never their math).
  ThreadGuard guard;
  exec::set_num_threads(4);
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 6;
  CMatrix phi = test::random_orthonormal(setup, nb, 33);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (std::size_t window : {1u, 3u, 8u}) {
    ham::FockOptions fopt;
    fopt.band_window = window;
    ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
    fock.set_orbitals(phi, occ, bands, comm);
    CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
    fock.apply_add(phi, y, comm);
    if (window == 1) {
      ref = y;
    } else {
      EXPECT_EQ(test::max_abs_diff(y, ref), 0.0) << "window=" << window;
    }
  }
}

TEST(BandParallel, DensityBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 7;  // ragged against the chunk count
  CMatrix psi = test::random_orthonormal(setup, nb, 37);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  fft::Fft3D fft_dense(setup.dense_grid.dims());

  std::vector<double> ref;
  for (std::size_t nt : kThreadCounts) {
    exec::set_num_threads(nt);
    auto rho = ham::compute_density(setup, fft_dense, psi, occ, comm);
    if (nt == 1) {
      ref = rho;
    } else {
      ASSERT_EQ(rho.size(), ref.size());
      for (std::size_t i = 0; i < rho.size(); ++i)
        ASSERT_EQ(rho[i], ref[i]) << "i=" << i << " nt=" << nt;
    }
  }
}

TEST(BandParallel, HamiltonianApplyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  auto options = test::fast_hybrid_options();
  const std::size_t nb = 6;
  CMatrix psi = test::random_orthonormal(setup, nb, 41);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (std::size_t nt : kThreadCounts) {
    exec::set_num_threads(nt);
    ham::Hamiltonian h(setup, species, options);
    auto rho = ham::compute_density(setup, h.fft_dense(), psi, occ, comm);
    h.update_density(rho);
    h.set_exchange_orbitals(psi, occ, bands, comm);
    CMatrix y;
    h.apply(psi, y, comm);
    if (nt == 1) {
      ref = y;
    } else {
      EXPECT_EQ(test::max_abs_diff(y, ref), 0.0) << "nt=" << nt;
    }
  }
}

TEST(BandParallel, LobpcgBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::HamiltonianOptions options;  // semi-local keeps the solve cheap
  options.hybrid.enabled = false;
  const std::size_t nb = 4;
  CMatrix x0 = test::random_orthonormal(setup, nb, 43);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;

  CMatrix ref;
  std::vector<double> ref_evals;
  for (std::size_t nt : kThreadCounts) {
    exec::set_num_threads(nt);
    ham::Hamiltonian h(setup, species, options);
    auto rho = ham::compute_density(setup, h.fft_dense(), x0, occ, comm);
    h.update_density(rho);
    scf::ApplyFn apply = [&](const CMatrix& in, CMatrix& out) { h.apply(in, out, comm); };
    std::vector<double> precond(setup.n_g());
    for (std::size_t i = 0; i < setup.n_g(); ++i) precond[i] = 0.5 * setup.sphere.g2()[i];
    CMatrix x = x0;
    scf::LobpcgOptions lopt;
    lopt.max_iter = 5;
    lopt.tol = 0.0;  // fixed iteration count: identical work at every width
    auto res = scf::lobpcg(apply, precond, x, lopt);
    if (nt == 1) {
      ref = x;
      ref_evals = res.eigenvalues;
    } else {
      EXPECT_EQ(test::max_abs_diff(x, ref), 0.0) << "nt=" << nt;
      ASSERT_EQ(res.eigenvalues.size(), ref_evals.size());
      for (std::size_t j = 0; j < nb; ++j) ASSERT_EQ(res.eigenvalues[j], ref_evals[j]);
    }
  }
}

TEST(BandParallel, PtCnStepBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::size_t nb = 8;
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-8;
  opt.max_scf = 8;
  par::SerialComm comm;

  CMatrix ref;
  int ref_iters = -1;
  for (std::size_t nt : kThreadCounts) {
    exec::set_num_threads(nt);
    auto setup = test::make_si8_setup(3.0, 1);
    auto species = pseudo::PseudoSpecies::silicon(true);
    ham::Hamiltonian h(setup, species, test::fast_hybrid_options());
    CMatrix psi = test::random_orthonormal(setup, nb, 47);
    std::vector<double> occ(nb, 2.0);
    td::PtCnPropagator prop(h, par::BlockPartition(nb, 1), opt, 1);
    auto rep = prop.step(psi, occ, 0.0, kick, comm);
    if (nt == 1) {
      ref = psi;
      ref_iters = rep.scf_iterations;
    } else {
      EXPECT_EQ(rep.scf_iterations, ref_iters) << "nt=" << nt;
      EXPECT_EQ(test::max_abs_diff(psi, ref), 0.0) << "nt=" << nt;
    }
  }
}

TEST(BandParallel, DensityLineSplitBitIdenticalToBandPath) {
  // Hybrid band×line schedule: with fewer bands than threads the transforms
  // run as one batched (band × line) pass. Same per-line kernels, same
  // fixed-chunk reduction — byte-identical to the band path at any width.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 3;  // below the widest engine in the sweep
  CMatrix psi = test::random_orthonormal(setup, nb, 59);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  fft::Fft3D fft_dense(setup.dense_grid.dims());

  std::vector<double> ref;
  for (bool split : {false, true}) {
    for (std::size_t nt : kThreadCounts) {
      exec::set_num_threads(nt);
      auto rho = ham::compute_density(setup, fft_dense, psi, occ, comm, split);
      if (ref.empty()) {
        ref = rho;
      } else {
        ASSERT_EQ(rho.size(), ref.size());
        for (std::size_t i = 0; i < rho.size(); ++i)
          ASSERT_EQ(rho[i], ref[i]) << "i=" << i << " nt=" << nt << " split=" << split;
      }
    }
  }
}

TEST(BandParallel, HamiltonianApplyLineSplitBitIdenticalToBandPath) {
  // Narrow block (2 bands) with the hybrid split forced on and off at every
  // width: the batched (band × line) formulation must reproduce the
  // band-parallel loop byte for byte, including the Fock term whose narrow
  // windows switch to the band-serial/line-parallel schedule.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  const std::size_t nb = 2;
  CMatrix psi = test::random_orthonormal(setup, nb, 61);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (bool split : {false, true}) {
    for (std::size_t nt : kThreadCounts) {
      exec::set_num_threads(nt);
      auto options = test::fast_hybrid_options();
      options.band_line_split = split;
      options.fock.band_line_split = split;
      ham::Hamiltonian h(setup, species, options);
      auto rho = ham::compute_density(setup, h.fft_dense(), psi, occ, comm, split);
      h.update_density(rho);
      h.set_exchange_orbitals(psi, occ, bands, comm);
      CMatrix y;
      h.apply(psi, y, comm);
      if (ref.empty()) {
        ref = y;
      } else {
        EXPECT_EQ(test::max_abs_diff(y, ref), 0.0) << "nt=" << nt << " split=" << split;
      }
    }
  }
}

TEST(BandParallel, FockNarrowWindowLineSplitBitIdentical) {
  // band_window = 1 makes every window a single task — the extreme case for
  // the band-serial/line-parallel Fock schedule.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 4;
  CMatrix phi = test::random_orthonormal(setup, nb, 67);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (bool split : {false, true}) {
    for (std::size_t nt : kThreadCounts) {
      exec::set_num_threads(nt);
      ham::FockOptions fopt;
      fopt.band_window = 1;
      fopt.band_line_split = split;
      ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
      fock.set_orbitals(phi, occ, bands, comm);
      CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
      fock.apply_add(phi, y, comm);
      if (ref.empty()) {
        ref = y;
      } else {
        EXPECT_EQ(test::max_abs_diff(y, ref), 0.0) << "nt=" << nt << " split=" << split;
      }
    }
  }
}

TEST(BandParallel, DensityPipelineModesBitIdenticalAcrossDispatchAndWidth) {
  // The whole-operator density pipeline (one cached-graph replay) against
  // the staged formulation, on both FFT dispatch paths, at widths 1/2/4 —
  // every combination must produce the same bytes. nb = 3 keeps the block
  // narrow at width 4 so the pipeline actually engages.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 3;
  CMatrix psi = test::random_orthonormal(setup, nb, 71);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;

  std::vector<double> ref;
  for (const auto path : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
    fft::Fft3D fft_dense(setup.dense_grid.dims(), fft::RadixKernel::kAuto, path);
    for (const auto mode : {fft::PipelineMode::kStaged, fft::PipelineMode::kFused}) {
      for (std::size_t nt : kThreadCounts) {
        exec::set_num_threads(nt);
        auto rho = ham::compute_density(setup, fft_dense, psi, occ, comm, true, mode);
        if (ref.empty()) {
          ref = rho;
        } else {
          ASSERT_EQ(rho.size(), ref.size());
          for (std::size_t i = 0; i < rho.size(); ++i)
            ASSERT_EQ(rho[i], ref[i]) << "i=" << i << " nt=" << nt;
        }
      }
    }
  }
}

TEST(BandParallel, HamiltonianPipelineModesBitIdenticalAcrossDispatchAndWidth) {
  // Fused vs staged whole-operator pipelines through the full hybrid
  // Hamiltonian (the Fock pair solves run their own fused pipelines), on
  // both dispatch paths at widths 1/2/4: byte equality everywhere.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  const std::size_t nb = 2;
  CMatrix psi = test::random_orthonormal(setup, nb, 73);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (const auto path : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
    for (const auto mode : {fft::PipelineMode::kStaged, fft::PipelineMode::kFused}) {
      for (std::size_t nt : kThreadCounts) {
        exec::set_num_threads(nt);
        auto options = test::fast_hybrid_options();
        options.fft_dispatch = path;
        options.op_pipeline = mode;  // fock inherits via normalize()
        ham::Hamiltonian h(setup, species, options);
        auto rho = ham::compute_density(setup, h.fft_dense(), psi, occ, comm, true, mode);
        h.update_density(rho);
        h.set_exchange_orbitals(psi, occ, bands, comm);
        CMatrix y;
        h.apply(psi, y, comm);
        if (ref.empty()) {
          ref = y;
        } else {
          EXPECT_EQ(test::max_abs_diff(y, ref), 0.0)
              << "nt=" << nt << " fused=" << (mode == fft::PipelineMode::kFused)
              << " graph=" << (path == fft::ExecPath::kTaskGraph);
        }
      }
    }
  }
}

TEST(BandParallel, FockPipelineModesBitIdenticalAcrossWidth) {
  // The fused pair-solve pipeline (multiply/solve stages chained into the
  // same graph as the FFT passes) vs the staged loops, wide and narrow
  // windows, at widths 1/2/4.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 6;
  CMatrix phi = test::random_orthonormal(setup, nb, 79);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  for (const auto mode : {fft::PipelineMode::kStaged, fft::PipelineMode::kFused}) {
    for (std::size_t window : {1u, 4u}) {
      for (std::size_t nt : kThreadCounts) {
        exec::set_num_threads(nt);
        ham::FockOptions fopt;
        fopt.band_window = window;
        fopt.op_pipeline = mode;
        ham::FockOperator fock(setup, xc::HybridParams{true, 0.25, 0.11}, fopt);
        fock.set_orbitals(phi, occ, bands, comm);
        CMatrix y(setup.n_g(), nb, Complex{0.0, 0.0});
        fock.apply_add(phi, y, comm);
        if (ref.empty()) {
          ref = y;
        } else {
          EXPECT_EQ(test::max_abs_diff(y, ref), 0.0)
              << "nt=" << nt << " window=" << window
              << " fused=" << (mode == fft::PipelineMode::kFused);
        }
      }
    }
  }
}

TEST(BandParallel, OverlappedTransposeMatchesSerializedPath) {
  // Two thread-backed ranks, engine at 4 threads, Fock broadcast prefetch
  // AND the async-lane transposes all in flight: the overlapped step must
  // be bit-identical to the serialized one on every rank.
  ThreadGuard guard;
  exec::set_num_threads(4);
  const int np = 2;
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  CMatrix psi_init = test::random_orthonormal(setup, nb, 53);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);

  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-8;
  opt.max_scf = 6;

  auto run = [&](bool overlap) {
    std::vector<CMatrix> per_rank(np);
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      auto setup_loc = test::make_si8_setup(3.0, 1);
      auto species = pseudo::PseudoSpecies::silicon(true);
      auto options = test::fast_hybrid_options();
      options.fock.overlap = true;  // broadcast prefetch on the async lane
      ham::Hamiltonian h(setup_loc, species, options);
      par::BlockPartition bands(nb, np);
      CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
      td::PtCnOptions o = opt;
      o.overlap_transpose = overlap;
      td::PtCnPropagator prop(h, bands, o, np);
      prop.step(psi_loc, occ, 0.0, kick, c);
      per_rank[c.rank()] = std::move(psi_loc);
    });
    return per_rank;
  };

  auto serialized = run(false);
  auto overlapped = run(true);
  for (int r = 0; r < np; ++r)
    EXPECT_EQ(test::max_abs_diff(overlapped[r], serialized[r]), 0.0) << "rank " << r;
}

TEST(BandParallel, OverlapModeBitIdenticalAcrossThreadCounts) {
  // Overlap {off, on} × engine widths {1, 2, 4} on two thread-backed ranks:
  // all six PT-CN runs must produce the same bytes. The overlap knob only
  // moves the exchange onto the async lane; pack/unpack stay engine-ordered
  // and the arithmetic never changes.
  ThreadGuard guard;
  const int np = 2;
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  CMatrix psi_init = test::random_orthonormal(setup, nb, 83);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);

  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-8;
  opt.max_scf = 5;

  std::vector<CMatrix> ref(np);
  for (bool overlap : {false, true}) {
    for (std::size_t nt : kThreadCounts) {
      exec::set_num_threads(nt);
      std::vector<CMatrix> per_rank(np);
      par::ThreadGroup::run(np, [&](par::Comm& c) {
        auto setup_loc = test::make_si8_setup(3.0, 1);
        auto species = pseudo::PseudoSpecies::silicon(true);
        ham::Hamiltonian h(setup_loc, species, test::fast_hybrid_options());
        par::BlockPartition bands(nb, np);
        CMatrix psi_loc = test::band_slice(psi_init, bands, c.rank());
        td::PtCnOptions o = opt;
        o.overlap_transpose = overlap;
        td::PtCnPropagator prop(h, bands, o, np);
        prop.step(psi_loc, occ, 0.0, kick, c);
        per_rank[c.rank()] = std::move(psi_loc);
      });
      if (ref[0].size() == 0) {
        ref = std::move(per_rank);
      } else {
        for (int r = 0; r < np; ++r)
          EXPECT_EQ(test::max_abs_diff(per_rank[r], ref[r]), 0.0)
              << "rank " << r << " nt=" << nt << " overlap=" << overlap;
      }
    }
  }
}

TEST(BandParallel, FockRebalanceBitIdenticalAcrossThreadCounts) {
  // Dynamic band rebalance {off, on-with-forced-skew} × widths {1, 2, 4} on
  // two ranks: the shuffled solve must reproduce the static layout byte for
  // byte at every engine width.
  ThreadGuard guard;
  const int np = 2;
  const std::size_t nb = 6;
  auto setup = test::make_si8_setup(3.0, 1);
  CMatrix phi = test::random_orthonormal(setup, nb, 89);
  CMatrix x = test::random_orthonormal(setup, nb, 97);
  std::vector<double> occ(nb, 2.0);

  std::vector<CMatrix> ref(np);
  for (bool rebalance : {false, true}) {
    for (std::size_t nt : kThreadCounts) {
      exec::set_num_threads(nt);
      std::vector<CMatrix> per_rank(np);
      par::ThreadGroup::run(np, [&](par::Comm& c) {
        auto setup_loc = test::make_si8_setup(3.0, 1);
        par::BlockPartition bands(nb, np);
        ham::FockOptions fopt;
        fopt.band_rebalance = rebalance;
        ham::FockOperator fock(setup_loc, xc::HybridParams{true, 0.25, 0.11}, fopt);
        fock.set_orbitals(test::band_slice(phi, bands, c.rank()), occ, bands, c);
        if (rebalance) fock.debug_set_rank_cost({5.0, 1.0});
        CMatrix x_loc = test::band_slice(x, bands, c.rank());
        CMatrix y(setup_loc.n_g(), x_loc.cols(), Complex{0, 0});
        fock.apply_add(x_loc, y, c);
        per_rank[c.rank()] = std::move(y);
      });
      if (ref[0].size() == 0) {
        ref = std::move(per_rank);
      } else {
        for (int r = 0; r < np; ++r)
          EXPECT_EQ(test::max_abs_diff(per_rank[r], ref[r]), 0.0)
              << "rank " << r << " nt=" << nt << " rebalance=" << rebalance;
      }
    }
  }
}

}  // namespace
}  // namespace pwdft
