#include <gtest/gtest.h>

#include "common/random.hpp"
#include "fft/fft3d.hpp"
#include "fft/fft_plan.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

using fft::Fft3D;
using fft::FftPlan1D;

std::vector<Complex> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

class Fft1DSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1DSizes, MatchesNaiveDftForward) {
  const std::size_t n = GetParam();
  auto x = random_vec(n, 100 + n);
  auto ref = test::naive_dft(x, -1);
  FftPlan1D plan(n);
  std::vector<Complex> out(n), work(n);
  plan.execute(x.data(), 1, out.data(), work.data(), -1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - ref[i]), 0.0, 1e-9 * std::sqrt(double(n)))
        << "n=" << n << " i=" << i;
}

TEST_P(Fft1DSizes, MatchesNaiveDftInverse) {
  const std::size_t n = GetParam();
  auto x = random_vec(n, 200 + n);
  auto ref = test::naive_dft(x, +1);
  FftPlan1D plan(n);
  std::vector<Complex> out(n), work(n);
  plan.execute(x.data(), 1, out.data(), work.data(), +1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - ref[i]), 0.0, 1e-9 * std::sqrt(double(n)));
}

TEST_P(Fft1DSizes, RoundTripIsIdentityTimesN) {
  const std::size_t n = GetParam();
  auto x = random_vec(n, 300 + n);
  FftPlan1D plan(n);
  std::vector<Complex> f(n), out(n), work(n);
  plan.execute(x.data(), 1, f.data(), work.data(), -1);
  plan.execute(f.data(), 1, out.data(), work.data(), +1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(out[i] - x[i] * double(n)), 0.0, 1e-8 * double(n));
}

TEST_P(Fft1DSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_vec(n, 400 + n);
  FftPlan1D plan(n);
  std::vector<Complex> f(n), work(n);
  plan.execute(x.data(), 1, f.data(), work.data(), -1);
  double ex = 0, ef = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ex += std::norm(x[i]);
    ef += std::norm(f[i]);
  }
  EXPECT_NEAR(ef, ex * double(n), 1e-8 * ex * double(n));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, Fft1DSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16,
                                           20, 24, 25, 27, 30, 32, 36, 45, 48, 60, 90, 120));

TEST(FftPlan1D, StridedInputMatchesContiguous) {
  const std::size_t n = 30, stride = 7;
  auto big = random_vec(n * stride, 11);
  std::vector<Complex> contig(n);
  for (std::size_t i = 0; i < n; ++i) contig[i] = big[i * stride];
  FftPlan1D plan(n);
  std::vector<Complex> a(n), b(n), work(n);
  plan.execute(big.data(), stride, a.data(), work.data(), -1);
  plan.execute(contig.data(), 1, b.data(), work.data(), -1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
}

TEST(FftPlan1D, LinearityHolds) {
  const std::size_t n = 24;
  auto x = random_vec(n, 1), y = random_vec(n, 2);
  FftPlan1D plan(n);
  std::vector<Complex> fx(n), fy(n), fz(n), z(n), work(n);
  const Complex a{1.7, -0.3}, b{-0.5, 2.1};
  for (std::size_t i = 0; i < n; ++i) z[i] = a * x[i] + b * y[i];
  plan.execute(x.data(), 1, fx.data(), work.data(), -1);
  plan.execute(y.data(), 1, fy.data(), work.data(), -1);
  plan.execute(z.data(), 1, fz.data(), work.data(), -1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fz[i] - (a * fx[i] + b * fy[i])), 0.0, 1e-10);
}

TEST(FftPlan1D, FastSizeDetection) {
  EXPECT_TRUE(FftPlan1D::fast_size(1));
  EXPECT_TRUE(FftPlan1D::fast_size(15));
  EXPECT_TRUE(FftPlan1D::fast_size(60));
  EXPECT_TRUE(FftPlan1D::fast_size(2 * 3 * 5 * 8));
  EXPECT_FALSE(FftPlan1D::fast_size(7));
  EXPECT_FALSE(FftPlan1D::fast_size(0));
  EXPECT_FALSE(FftPlan1D::fast_size(14));
}

TEST(Fft3D, DeltaTransformsToConstant) {
  Fft3D fft({4, 6, 8});
  std::vector<Complex> data(fft.size(), Complex{0, 0});
  data[0] = Complex{1.0, 0.0};
  fft.forward(data.data());
  for (const auto& v : data) EXPECT_NEAR(std::abs(v - Complex{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft3D, PlaneWaveTransformsToSinglePeak) {
  const std::array<std::size_t, 3> dims{6, 5, 4};
  Fft3D fft(dims);
  std::vector<Complex> data(fft.size());
  const int k0 = 2, k1 = 1, k2 = 3;
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const double ang = constants::two_pi * (double(k0 * x) / dims[0] +
                                                double(k1 * y) / dims[1] +
                                                double(k2 * z) / dims[2]);
        data[idx] = Complex{std::cos(ang), std::sin(ang)};
      }
  // exp(+i k.r) picks out bin k under the inverse convention; the forward
  // transform of exp(+i k.r) has its peak at k as well (sum of e^{i(k-k')r}).
  fft.forward(data.data());
  const std::size_t peak = k0 + dims[0] * (k1 + dims[1] * k2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i == peak) {
      EXPECT_NEAR(std::abs(data[i] - Complex{double(fft.size()), 0.0}), 0.0, 1e-8);
    } else {
      EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-8);
    }
  }
}

TEST(Fft3D, RoundTripScaled) {
  Fft3D fft({15, 15, 15});
  auto x = random_vec(fft.size(), 5);
  auto y = x;
  fft.forward(y.data());
  fft.inverse_scaled(y.data());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
}

TEST(Fft3D, BatchedMatchesLoop) {
  Fft3D fft({12, 10, 6});
  const std::size_t nb = 5;
  auto batch = random_vec(fft.size() * nb, 6);
  auto ref = batch;
  fft.forward_many(batch.data(), nb);
  for (std::size_t b = 0; b < nb; ++b) fft.forward(ref.data() + b * fft.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(std::abs(batch[i] - ref[i]), 0.0, 1e-12);
}

TEST(Fft3D, AxesAreIndependent) {
  // A function varying only along z transforms to a line along the z axis.
  const std::array<std::size_t, 3> dims{4, 4, 8};
  Fft3D fft(dims);
  std::vector<Complex> data(fft.size());
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx)
        data[idx] = Complex{std::sin(constants::two_pi * double(z) / dims[2]), 0.0};
  fft.forward(data.data());
  idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        if (x != 0 || y != 0) EXPECT_NEAR(std::abs(data[idx]), 0.0, 1e-9);
      }
}

TEST(Fft3D, ParsevalIn3D) {
  Fft3D fft({15, 12, 10});
  auto x = random_vec(fft.size(), 9);
  double ex = 0;
  for (const auto& v : x) ex += std::norm(v);
  fft.forward(x.data());
  double ef = 0;
  for (const auto& v : x) ef += std::norm(v);
  EXPECT_NEAR(ef, ex * double(fft.size()), 1e-8 * ex * double(fft.size()));
}

}  // namespace
}  // namespace pwdft
