#include <gtest/gtest.h>

#include "ham/setup.hpp"
#include "td/field.hpp"
#include "td/observables.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

TEST(LaserPulse, PhotonEnergyMatches380nm) {
  const auto pulse = td::LaserPulse::paper_pulse();
  EXPECT_NEAR(pulse.photon_energy_ev(), 3.263, 0.01);  // 1239.84/380
}

TEST(LaserPulse, EnvelopePeaksAtCenter) {
  const double t0 = constants::femtoseconds_to_au(15.0);
  const auto pulse = td::LaserPulse::paper_pulse(0.01);
  EXPECT_NEAR(pulse.efield(t0)[2], 0.01, 1e-10);  // cos(0)=1 at center
  // Far before and after the pulse the field is negligible.
  EXPECT_NEAR(pulse.efield(0.0)[2], 0.0, 1e-8);
  EXPECT_NEAR(pulse.efield(2.0 * t0)[2], 0.0, 1e-8);
}

TEST(LaserPulse, VectorPotentialIsMinusIntegralOfE) {
  const auto pulse = td::LaserPulse::paper_pulse(0.02);
  // Central difference of a(t) should reproduce -E(t).
  const double t = constants::femtoseconds_to_au(14.0);
  const double h = 0.05;
  const double dadt = (pulse.vector_potential(t + h)[2] - pulse.vector_potential(t - h)[2]) /
                      (2.0 * h);
  EXPECT_NEAR(dadt, -pulse.efield(t)[2], 2e-4 * std::abs(pulse.efield(t)[2]) + 1e-6);
}

TEST(LaserPulse, StartsFromZeroVectorPotential) {
  const auto pulse = td::LaserPulse::paper_pulse();
  EXPECT_EQ(pulse.vector_potential(-1.0)[2], 0.0);
  EXPECT_NEAR(pulse.vector_potential(0.0)[2], 0.0, 1e-12);
}

TEST(LaserPulse, PolarizationIsNormalizedDirection) {
  td::LaserPulse p(380.0, 0.01, 10.0, 3.0, {3.0, 0.0, 4.0}, 100.0);
  const auto e = p.efield(10.0);
  EXPECT_NEAR(e[0] / e[2], 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(std::sqrt(grid::norm2(e)), 0.01, 1e-10);
}

TEST(DeltaKick, StepsAtGivenTime) {
  td::DeltaKick kick({0.0, 0.0, 0.002}, 1.0);
  EXPECT_EQ(kick.vector_potential(0.5)[2], 0.0);
  EXPECT_EQ(kick.vector_potential(1.5)[2], 0.002);
}

TEST(ZeroField, IsZero) {
  td::ZeroField f;
  EXPECT_EQ(f.vector_potential(3.0)[0], 0.0);
  EXPECT_EQ(f.efield(3.0)[2], 0.0);
}

TEST(Current, VanishesForInversionSymmetricState) {
  auto setup = test::make_si8_setup(4.0, 1);
  // Coefficients depending only on |G| give an inversion-symmetric state.
  CMatrix psi(setup.n_g(), 1);
  const auto& g2 = setup.sphere.g2();
  double norm = 0.0;
  for (std::size_t i = 0; i < setup.n_g(); ++i) {
    psi(i, 0) = Complex{std::exp(-g2[i]), 0.0};
    norm += std::norm(psi(i, 0));
  }
  linalg::scal(Complex{1.0 / std::sqrt(norm), 0.0}, {psi.col(0), setup.n_g()});
  std::vector<double> occ{2.0};
  par::SerialComm comm;
  const auto j = td::compute_current(setup, psi, occ, {0, 0, 0}, comm);
  EXPECT_NEAR(j[0], 0.0, 1e-12);
  EXPECT_NEAR(j[1], 0.0, 1e-12);
  EXPECT_NEAR(j[2], 0.0, 1e-12);
}

TEST(Current, DiamagneticResponseIsDensityTimesA) {
  // j(a) - j(0) = (Ne/Omega) * a for any normalized state.
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 5, 3);
  std::vector<double> occ(5, 2.0);
  par::SerialComm comm;
  const grid::Vec3 a{0.01, -0.02, 0.005};
  const auto j0 = td::compute_current(setup, psi, occ, {0, 0, 0}, comm);
  const auto ja = td::compute_current(setup, psi, occ, a, comm);
  const double ne_over_vol = 10.0 / setup.volume();
  for (int d = 0; d < 3; ++d)
    EXPECT_NEAR(ja[d] - j0[d], ne_over_vol * a[d], 1e-12);
}

TEST(ExcitedElectrons, ZeroForIdenticalStates) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 6, 5);
  std::vector<double> occ(6, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(6, 1);
  EXPECT_NEAR(td::excited_electrons(setup, bands, psi, psi, occ, comm), 0.0, 1e-10);
}

TEST(ExcitedElectrons, GaugeInvariantUnderOccupiedRotation) {
  // The PT gauge is exactly such a rotation: n_exc must not see it.
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 7);
  std::vector<double> occ(4, 2.0);

  // Unitary mix of the occupied orbitals.
  Rng rng(9);
  CMatrix a(4, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.complex_normal();
  CMatrix s = linalg::overlap(a, a);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(a, s);  // orthonormal columns => unitary 4x4
  CMatrix rotated(setup.n_g(), 4);
  linalg::gemm('N', 'N', Complex{1, 0}, psi, a, Complex{0, 0}, rotated);

  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  EXPECT_NEAR(td::excited_electrons(setup, bands, psi, rotated, occ, comm), 0.0, 1e-9);
}

TEST(ExcitedElectrons, CountsOrthogonalReplacement) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto all = test::random_orthonormal(setup, 5, 11);
  CMatrix psi0(setup.n_g(), 2), psi1(setup.n_g(), 2);
  for (std::size_t i = 0; i < setup.n_g(); ++i) {
    psi0(i, 0) = all(i, 0);
    psi0(i, 1) = all(i, 1);
    psi1(i, 0) = all(i, 0);
    psi1(i, 1) = all(i, 4);  // band 1 promoted to an orthogonal state
  }
  std::vector<double> occ(2, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(2, 1);
  EXPECT_NEAR(td::excited_electrons(setup, bands, psi0, psi1, occ, comm), 2.0, 1e-9);
}

TEST(Spectrum, DampedOscillatorPeaksAtItsFrequency) {
  // Synthetic current j(t) = -kappa*sin(w0 t) e^{-g t} mimics a single
  // resonance; Im eps must peak near w0.
  const double w0 = 0.25, g = 0.01, kappa = 1e-3;
  std::vector<td::TimePoint> trace;
  for (int i = 0; i <= 4000; ++i) {
    td::TimePoint p;
    p.t = i * 0.5;
    p.current = {0.0, 0.0, -kappa * std::sin(w0 * p.t) * std::exp(-g * p.t)};
    trace.push_back(p);
  }
  auto spec = td::dielectric_from_kick(trace, kappa, 0.005, 0.6, 120);
  // The synthetic current carries a DC component, so Im eps ~ 1/omega near
  // zero (a Drude-like tail); search for the resonance away from it.
  double best_w = 0.0, best = -1e9;
  for (const auto& s : spec) {
    if (s.omega < 0.08) continue;
    if (s.eps_im > best) {
      best = s.eps_im;
      best_w = s.omega;
    }
  }
  EXPECT_NEAR(best_w, w0, 0.03);
  EXPECT_GT(best, 0.0);
}

TEST(Spectrum, LinearInKickStrength) {
  auto make_trace = [&](double kappa) {
    std::vector<td::TimePoint> trace;
    for (int i = 0; i <= 1000; ++i) {
      td::TimePoint p;
      p.t = i * 0.5;
      p.current = {0.0, 0.0, -kappa * std::sin(0.2 * p.t) * std::exp(-0.02 * p.t)};
      trace.push_back(p);
    }
    return trace;
  };
  auto s1 = td::dielectric_from_kick(make_trace(1e-3), 1e-3, 0.01, 0.5, 50);
  auto s2 = td::dielectric_from_kick(make_trace(2e-3), 2e-3, 0.01, 0.5, 50);
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_NEAR(s1[i].eps_im, s2[i].eps_im, 1e-10 + 1e-9 * std::abs(s1[i].eps_im));
}

}  // namespace
}  // namespace pwdft
