#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "serve/job_engine.hpp"

namespace pwdft {
namespace {

core::SimulationOptions tiny_sim(bool hybrid = true) {
  core::SimulationOptions opt;
  opt.cells[0] = opt.cells[1] = opt.cells[2] = 1;
  opt.ecut = 3.0;
  opt.dense_factor = 1;
  opt.hybrid = hybrid;
  opt.scf.max_iter = 40;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;
  opt.scf.hybrid_outer_tol = 1e-6;
  return opt;
}

serve::JobSpec tiny_job(const std::string& name, serve::JobKind kind, int steps) {
  serve::JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.sim = tiny_sim();
  spec.steps = steps;
  spec.ptcn.rho_tol = 1e-7;
  return spec;
}

/// Bitwise equality on every physics field (wall_seconds is timing noise).
void expect_points_identical(const td::TimePoint& a, const td::TimePoint& b,
                             const std::string& what) {
  EXPECT_EQ(a.t, b.t) << what;
  for (int d = 0; d < 3; ++d) EXPECT_EQ(a.current[d], b.current[d]) << what << " axis " << d;
  EXPECT_EQ(a.n_excited, b.n_excited) << what;
  EXPECT_EQ(a.energy, b.energy) << what;
  EXPECT_EQ(a.scf_iterations, b.scf_iterations) << what;
  EXPECT_EQ(a.rho_error, b.rho_error) << what;
  EXPECT_EQ(a.exchange_refreshed, b.exchange_refreshed) << what;
  EXPECT_EQ(a.mts_drift, b.mts_drift) << what;
}

void expect_traces_identical(const std::vector<td::TimePoint>& a,
                             const std::vector<td::TimePoint>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_points_identical(a[i], b[i], what + " point " + std::to_string(i));
}

/// Solo reference: the same trajectory run directly through Simulation.
std::vector<td::TimePoint> solo_trace(const serve::JobSpec& spec) {
  core::Simulation sim(spec.sim);
  sim.ground_state();
  const auto field = spec.build_field();
  core::PropagateOptions prop;
  prop.dt_as = spec.dt_as;
  prop.steps = spec.steps;
  prop.field = field.get();
  prop.ptcn = spec.ptcn;
  return sim.propagate(prop);
}

struct CkptDir {
  explicit CkptDir(const char* name) : path(std::string("/tmp/pwdft_serve_") + name) {
    std::filesystem::create_directories(path);
  }
  ~CkptDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// The tentpole acceptance test: >= 4 concurrent mixed jobs (SCF probe,
// absorption kick, laser run, quiescent propagation) co-scheduled on the
// shared pool, every trajectory bit-identical to its solo run.
TEST(JobEngine, ConcurrentMixedTenantsMatchSoloRunsBitwise) {
  const auto spec_abs = tiny_job("abs", serve::JobKind::kAbsorption, 2);
  auto spec_laser = tiny_job("laser", serve::JobKind::kLaser, 2);
  spec_laser.field.laser_e0 = 0.05;
  auto spec_quiet = tiny_job("quiet", serve::JobKind::kAbsorption, 1);
  spec_quiet.field.kick = {0.0, 0.0, 0.0};

  const auto ref_abs = solo_trace(spec_abs);
  const auto ref_laser = solo_trace(spec_laser);
  const auto ref_quiet = solo_trace(spec_quiet);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 4;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  const auto id_scf = engine.submit(tiny_job("scf", serve::JobKind::kScf, 0));
  const auto id_abs = engine.submit(spec_abs);
  const auto id_laser = engine.submit(spec_laser);
  const auto id_quiet = engine.submit(spec_quiet);
  engine.wait_all();

  const auto scf = engine.wait(id_scf);
  ASSERT_EQ(scf.state, serve::JobState::kDone) << scf.error;
  EXPECT_TRUE(std::isfinite(scf.scf_energy));
  EXPECT_LT(scf.scf_energy, 0.0);

  const auto abs = engine.wait(id_abs);
  ASSERT_EQ(abs.state, serve::JobState::kDone) << abs.error;
  expect_traces_identical(abs.trace, ref_abs, "absorption");

  const auto laser = engine.wait(id_laser);
  ASSERT_EQ(laser.state, serve::JobState::kDone) << laser.error;
  expect_traces_identical(laser.trace, ref_laser, "laser");

  const auto quiet = engine.wait(id_quiet);
  ASSERT_EQ(quiet.state, serve::JobState::kDone) << quiet.error;
  expect_traces_identical(quiet.trace, ref_quiet, "quiet");
}

// The crash-restart acceptance test: kill a job mid-propagation, resume it
// from its snapshot, and require the stitched trajectory bit-identical to
// the uninterrupted run.
TEST(JobEngine, KillMidRunThenResumeIsBitIdentical) {
  auto spec = tiny_job("victim", serve::JobKind::kLaser, 3);
  spec.field.laser_e0 = 0.05;
  spec.checkpoint_every = 1;
  const auto ref = solo_trace(spec);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);

  // A second tenant runs across the kill/resume so the victim is always
  // co-scheduled, never alone on the pool.
  const auto id_bg = engine.submit(tiny_job("bg", serve::JobKind::kAbsorption, 2));

  const auto id = engine.submit(spec);
  // Kill at the first step boundary after the request lands: the job dies
  // mid-trajectory with only its checkpoint to continue from.
  engine.preempt(id);
  auto killed = engine.wait(id);
  ASSERT_EQ(killed.state, serve::JobState::kPreempted) << killed.error;
  EXPECT_LT(killed.steps_done, 3u);

  engine.resume(id);
  const auto done = engine.wait(id);
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.error;
  EXPECT_EQ(done.steps_done, 3u);
  expect_traces_identical(done.trace, ref, "kill+resume");

  const auto bg = engine.wait(id_bg);
  ASSERT_EQ(bg.state, serve::JobState::kDone) << bg.error;
}

TEST(JobEngine, PreemptedBeforeStartResumesFromScratch) {
  auto spec = tiny_job("early", serve::JobKind::kAbsorption, 1);
  const auto ref = solo_trace(spec);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 1;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  // A long-priority job hogs the single slot so "early" stays queued.
  const auto id_hog = engine.submit(tiny_job("hog", serve::JobKind::kAbsorption, 1));
  const auto id = engine.submit(spec);
  engine.preempt(id);
  const auto pre = engine.wait(id);
  EXPECT_EQ(pre.state, serve::JobState::kPreempted);
  EXPECT_TRUE(pre.trace.empty());

  engine.resume(id);
  const auto done = engine.wait(id);
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.error;
  expect_traces_identical(done.trace, ref, "requeued");
  engine.wait(id_hog);
}

TEST(JobEngine, CostModelGatesAdmissionButNeverStarves) {
  // Larger cells cost more in the calibrated model.
  const double small = serve::JobEngine::cost_estimate(
      tiny_job("a", serve::JobKind::kAbsorption, 2));
  auto big_spec = tiny_job("b", serve::JobKind::kAbsorption, 2);
  big_spec.sim.cells[0] = 2;
  const double big = serve::JobEngine::cost_estimate(big_spec);
  EXPECT_GT(big, small);
  // More steps cost proportionally more.
  EXPECT_EQ(serve::JobEngine::cost_estimate(tiny_job("c", serve::JobKind::kAbsorption, 4)),
            2.0 * serve::JobEngine::cost_estimate(tiny_job("c", serve::JobKind::kAbsorption, 2)));

  // A budget below any single job's cost still runs everything (one at a
  // time), and results are unchanged.
  auto spec = tiny_job("solo-budget", serve::JobKind::kAbsorption, 1);
  const auto ref = solo_trace(spec);
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 4;
  eopt.cost_budget = small / 1e6;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  const auto id1 = engine.submit(spec);
  const auto id2 = engine.submit(tiny_job("other", serve::JobKind::kScf, 0));
  engine.wait_all();
  const auto s1 = engine.wait(id1);
  ASSERT_EQ(s1.state, serve::JobState::kDone) << s1.error;
  expect_traces_identical(s1.trace, ref, "budgeted");
  EXPECT_EQ(engine.wait(id2).state, serve::JobState::kDone);
}

TEST(JobEngine, RejectsDuplicateNamesAndUnknownIds) {
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  auto spec = tiny_job("dup", serve::JobKind::kScf, 0);
  const auto id = engine.submit(spec);
  EXPECT_THROW(engine.submit(spec), Error);
  EXPECT_THROW(engine.status(99), Error);
  EXPECT_THROW(engine.preempt(99), Error);
  serve::JobSpec unnamed;
  EXPECT_THROW(engine.submit(unnamed), Error);
  engine.wait(id);
}

}  // namespace
}  // namespace pwdft
