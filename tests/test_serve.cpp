#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "serve/job_engine.hpp"
#include "serve_test_util.hpp"

namespace pwdft {
namespace {

using serve_test::CkptDir;
using serve_test::expect_traces_identical;
using serve_test::solo_trace;
using serve_test::tiny_job;

/// Polls until the job reports kRunning (its worker started).
void wait_until_running(serve::JobEngine& engine, serve::JobId id) {
  while (engine.status(id).state != serve::JobState::kRunning)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

// The tentpole acceptance test: >= 4 concurrent mixed jobs (SCF probe,
// absorption kick, laser run, quiescent propagation) co-scheduled on the
// shared pool, every trajectory bit-identical to its solo run.
TEST(JobEngine, ConcurrentMixedTenantsMatchSoloRunsBitwise) {
  const auto spec_abs = tiny_job("abs", serve::JobKind::kAbsorption, 2);
  auto spec_laser = tiny_job("laser", serve::JobKind::kLaser, 2);
  spec_laser.field.laser_e0 = 0.05;
  auto spec_quiet = tiny_job("quiet", serve::JobKind::kAbsorption, 1);
  spec_quiet.field.kick = {0.0, 0.0, 0.0};

  const auto ref_abs = solo_trace(spec_abs);
  const auto ref_laser = solo_trace(spec_laser);
  const auto ref_quiet = solo_trace(spec_quiet);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 4;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  const auto id_scf = engine.submit(tiny_job("scf", serve::JobKind::kScf, 0));
  const auto id_abs = engine.submit(spec_abs);
  const auto id_laser = engine.submit(spec_laser);
  const auto id_quiet = engine.submit(spec_quiet);
  ASSERT_TRUE(id_scf.ok() && id_abs.ok() && id_laser.ok() && id_quiet.ok());
  engine.wait_all();

  const auto scf = engine.wait(id_scf.id);
  ASSERT_EQ(scf.state, serve::JobState::kDone) << scf.message;
  EXPECT_TRUE(std::isfinite(scf.scf_energy));
  EXPECT_LT(scf.scf_energy, 0.0);

  const auto abs = engine.wait(id_abs.id);
  ASSERT_EQ(abs.state, serve::JobState::kDone) << abs.message;
  expect_traces_identical(abs.trace, ref_abs, "absorption");

  const auto laser = engine.wait(id_laser.id);
  ASSERT_EQ(laser.state, serve::JobState::kDone) << laser.message;
  expect_traces_identical(laser.trace, ref_laser, "laser");

  const auto quiet = engine.wait(id_quiet.id);
  ASSERT_EQ(quiet.state, serve::JobState::kDone) << quiet.message;
  expect_traces_identical(quiet.trace, ref_quiet, "quiet");
}

// The crash-restart acceptance test: kill a job mid-propagation, resume it
// from its snapshot, and require the stitched trajectory bit-identical to
// the uninterrupted run.
TEST(JobEngine, KillMidRunThenResumeIsBitIdentical) {
  auto spec = tiny_job("victim", serve::JobKind::kLaser, 3);
  spec.field.laser_e0 = 0.05;
  spec.checkpoint_every = 1;
  const auto ref = solo_trace(spec);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);

  // A second tenant runs across the kill/resume so the victim is always
  // co-scheduled, never alone on the pool.
  const auto id_bg = engine.submit(tiny_job("bg", serve::JobKind::kAbsorption, 2));

  const auto id = engine.submit(spec);
  ASSERT_TRUE(id.ok()) << id.message;
  // Kill at the first step boundary after the request lands: the job dies
  // mid-trajectory with only its checkpoint to continue from.
  EXPECT_EQ(engine.preempt(id.id), serve::ErrorCode::kOk);
  auto killed = engine.wait(id.id);
  ASSERT_EQ(killed.state, serve::JobState::kPreempted) << killed.message;
  EXPECT_LT(killed.steps_done, 3u);

  EXPECT_TRUE(engine.resume(id.id).ok());
  const auto done = engine.wait(id.id);
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.message;
  EXPECT_EQ(done.steps_done, 3u);
  expect_traces_identical(done.trace, ref, "kill+resume");

  const auto bg = engine.wait(id_bg.id);
  ASSERT_EQ(bg.state, serve::JobState::kDone) << bg.message;
}

TEST(JobEngine, PreemptedBeforeStartResumesFromScratch) {
  auto spec = tiny_job("early", serve::JobKind::kAbsorption, 1);
  const auto ref = solo_trace(spec);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 1;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  // A hog occupies the single slot so "early" stays queued.
  const auto id_hog = engine.submit(tiny_job("hog", serve::JobKind::kAbsorption, 1));
  const auto id = engine.submit(spec);
  EXPECT_EQ(engine.preempt(id.id), serve::ErrorCode::kOk);
  const auto pre = engine.wait(id.id);
  EXPECT_EQ(pre.state, serve::JobState::kPreempted);
  EXPECT_TRUE(pre.trace.empty());

  EXPECT_TRUE(engine.resume(id.id).ok());
  const auto done = engine.wait(id.id);
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.message;
  expect_traces_identical(done.trace, ref, "requeued");
  engine.wait(id_hog.id);
}

// Scheduler preemption: a starved higher-priority submission evicts the
// running lower-priority job at its next step boundary; the victim is
// requeued, resumes from its snapshot, and still ends bit-identical.
TEST(JobEngine, HighPrioritySubmissionEvictsCheapestLowerPriorityRunner) {
  auto victim = tiny_job("victim", serve::JobKind::kLaser, 3);
  victim.field.laser_e0 = 0.05;
  victim.checkpoint_every = 1;
  const auto ref = solo_trace(victim);

  auto urgent = tiny_job("urgent", serve::JobKind::kAbsorption, 1);
  urgent.priority = 5;
  const auto ref_urgent = solo_trace(urgent);

  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 1;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);

  const auto id_victim = engine.submit(victim);
  ASSERT_TRUE(id_victim.ok()) << id_victim.message;
  wait_until_running(engine, id_victim.id);
  // All slots busy + a strictly-higher-priority job queued -> the scheduler
  // marks the runner for eviction at its next step boundary.
  const auto id_urgent = engine.submit(urgent);
  ASSERT_TRUE(id_urgent.ok()) << id_urgent.message;
  engine.wait_all();

  const auto u = engine.wait(id_urgent.id);
  ASSERT_EQ(u.state, serve::JobState::kDone) << u.message;
  expect_traces_identical(u.trace, ref_urgent, "urgent");

  const auto v = engine.wait(id_victim.id);
  ASSERT_EQ(v.state, serve::JobState::kDone) << v.message;
  EXPECT_GE(v.preemptions, 1u);  // the eviction actually happened
  EXPECT_EQ(v.steps_done, 3u);
  expect_traces_identical(v.trace, ref, "evicted victim");
}

// Satellite regression pin: resume-by-name is idempotent. Resuming a job
// that is queued or running must NOT start a second run against the same
// checkpoint files; resuming a done job is a no-op kOk.
TEST(JobEngine, ResumeByNameIsIdempotent) {
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 1;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);

  auto spec = tiny_job("runner", serve::JobKind::kLaser, 2);
  spec.field.laser_e0 = 0.05;
  spec.checkpoint_every = 1;
  const auto id = engine.submit(spec);
  ASSERT_TRUE(id.ok()) << id.message;

  // Queued-behind job for the cancelled-resume case below.
  const auto id_q = engine.submit(tiny_job("doomed", serve::JobKind::kAbsorption, 1));
  ASSERT_TRUE(id_q.ok());

  wait_until_running(engine, id.id);
  const auto while_running = engine.resume(std::string("runner"));
  EXPECT_EQ(while_running.error, serve::ErrorCode::kAlreadyActive);
  EXPECT_EQ(while_running.id, id.id);
  const auto queued = engine.resume(std::string("doomed"));
  EXPECT_EQ(queued.error, serve::ErrorCode::kAlreadyActive);

  EXPECT_EQ(engine.cancel(id_q.id), serve::ErrorCode::kOk);
  EXPECT_EQ(engine.wait(id_q.id).state, serve::JobState::kCancelled);
  EXPECT_EQ(engine.resume(std::string("doomed")).error, serve::ErrorCode::kNotResumable);

  const auto done = engine.wait(id.id);
  ASSERT_EQ(done.state, serve::JobState::kDone) << done.message;
  const auto again = engine.resume(std::string("runner"));
  EXPECT_EQ(again.error, serve::ErrorCode::kOk);
  EXPECT_EQ(again.id, id.id);
  // No-op: still done, nothing requeued.
  EXPECT_EQ(engine.status(id.id).state, serve::JobState::kDone);
  EXPECT_EQ(engine.resume(std::string("nope")).error, serve::ErrorCode::kUnknownJob);
}

TEST(JobEngine, CancelDeletesCheckpointFilesAndIsTerminal) {
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 1;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  const auto id_hog = engine.submit(tiny_job("hog", serve::JobKind::kScf, 0));
  const auto id = engine.submit(tiny_job("gone", serve::JobKind::kAbsorption, 1));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/gone.spec.ckpt"));
  EXPECT_EQ(engine.cancel(id.id), serve::ErrorCode::kOk);
  EXPECT_EQ(engine.wait(id.id).state, serve::JobState::kCancelled);
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/gone.spec.ckpt"));
  EXPECT_EQ(engine.cancel(id.id), serve::ErrorCode::kOk);  // idempotent
  engine.wait(id_hog.id);
}

TEST(JobEngine, CostModelGatesAdmissionButNeverStarves) {
  // Larger cells cost more in the calibrated model.
  const double small = serve::JobEngine::cost_estimate(
      tiny_job("a", serve::JobKind::kAbsorption, 2));
  auto big_spec = tiny_job("b", serve::JobKind::kAbsorption, 2);
  big_spec.sim.cells[0] = 2;
  const double big = serve::JobEngine::cost_estimate(big_spec);
  EXPECT_GT(big, small);
  // More steps cost proportionally more.
  EXPECT_EQ(serve::JobEngine::cost_estimate(tiny_job("c", serve::JobKind::kAbsorption, 4)),
            2.0 * serve::JobEngine::cost_estimate(tiny_job("c", serve::JobKind::kAbsorption, 2)));

  // A budget below any single job's cost still runs everything (one at a
  // time), and results are unchanged.
  auto spec = tiny_job("solo-budget", serve::JobKind::kAbsorption, 1);
  const auto ref = solo_trace(spec);
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.max_running = 4;
  eopt.cost_budget = small / 1e6;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  const auto id1 = engine.submit(spec);
  const auto id2 = engine.submit(tiny_job("other", serve::JobKind::kScf, 0));
  engine.wait_all();
  const auto s1 = engine.wait(id1.id);
  ASSERT_EQ(s1.state, serve::JobState::kDone) << s1.message;
  expect_traces_identical(s1.trace, ref, "budgeted");
  EXPECT_EQ(engine.wait(id2.id).state, serve::JobState::kDone);
}

// The api_redesign pin: every rejection is a typed ErrorCode, not an
// exception — in-process callers see exactly what remote clients see.
TEST(JobEngine, RejectionsAreTypedErrorCodes) {
  CkptDir dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
  serve::JobEngineOptions eopt;
  eopt.checkpoint_dir = dir.path;
  serve::JobEngine engine(eopt);
  auto spec = tiny_job("dup", serve::JobKind::kScf, 0);
  const auto id = engine.submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.submit(spec).error, serve::ErrorCode::kDuplicateName);
  EXPECT_EQ(engine.status(99).error, serve::ErrorCode::kUnknownJob);
  EXPECT_EQ(engine.preempt(99), serve::ErrorCode::kUnknownJob);
  EXPECT_EQ(engine.cancel(99), serve::ErrorCode::kUnknownJob);
  EXPECT_EQ(engine.resume(static_cast<serve::JobId>(99)).error, serve::ErrorCode::kUnknownJob);
  serve::JobSpec unnamed;
  EXPECT_EQ(engine.submit(unnamed).error, serve::ErrorCode::kInvalidSpec);
  engine.wait(id.id);
}

TEST(JobSpec, ValidateRejectsHostileAndUnphysicalSpecs) {
  const auto ok = tiny_job("fine.job-1", serve::JobKind::kAbsorption, 2);
  EXPECT_EQ(ok.validate(), serve::ErrorCode::kOk);

  std::string why;
  auto bad = ok;
  bad.name = "../../etc/passwd";  // names key checkpoint files: no traversal
  EXPECT_EQ(bad.validate(&why), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.name = ".hidden";
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.name.clear();
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.name.assign(200, 'x');
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.steps = -1;
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.dt_as = 0.0;
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.sim.cells[1] = 0;
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  bad = ok;
  bad.sim.ecut = -3.0;
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kInvalidSpec);

  // Checkpointed MTS is rejected: resume is bit-exact only at the default
  // per-step exchange cadence.
  bad = ok;
  bad.ptcn.mts_interval = 4;
  bad.checkpoint_every = 1;
  EXPECT_EQ(bad.validate(&why), serve::ErrorCode::kInvalidSpec);
  bad.checkpoint_every = 0;
  EXPECT_EQ(bad.validate(), serve::ErrorCode::kOk);
}

TEST(JobEngineOptions, FromEnvResolvesEveryServeKnobStrictly) {
  ::setenv("PWDFT_SERVE_SLOTS", "7", 1);
  ::setenv("PWDFT_SERVE_CKPT_DIR", "/tmp/pwdft_serve_env_dir", 1);
  ::setenv("PWDFT_SERVE_RECOVER", "off", 1);
  auto opt = serve::JobEngineOptions::from_env();
  EXPECT_EQ(opt.max_running, 7u);
  EXPECT_EQ(opt.checkpoint_dir, "/tmp/pwdft_serve_env_dir");
  EXPECT_FALSE(opt.recover_on_start);

  ::setenv("PWDFT_SERVE_RECOVER", "on", 1);
  EXPECT_TRUE(serve::JobEngineOptions::from_env().recover_on_start);

  ::setenv("PWDFT_SERVE_SLOTS", "many", 1);
  EXPECT_THROW(serve::JobEngineOptions::from_env(), Error);
  ::setenv("PWDFT_SERVE_SLOTS", "0", 1);
  EXPECT_THROW(serve::JobEngineOptions::from_env(), Error);
  ::setenv("PWDFT_SERVE_SLOTS", "7", 1);
  ::setenv("PWDFT_SERVE_CKPT_DIR", "", 1);
  EXPECT_THROW(serve::JobEngineOptions::from_env(), Error);

  ::unsetenv("PWDFT_SERVE_SLOTS");
  ::unsetenv("PWDFT_SERVE_CKPT_DIR");
  ::unsetenv("PWDFT_SERVE_RECOVER");
  const auto def = serve::JobEngineOptions::from_env();
  EXPECT_EQ(def.max_running, 2u);
  EXPECT_EQ(def.checkpoint_dir, "/tmp");
  EXPECT_FALSE(def.recover_on_start);
}

}  // namespace
}  // namespace pwdft
