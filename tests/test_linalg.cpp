#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/heig.hpp"
#include "linalg/lsq.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

CMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  CMatrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.complex_normal();
  return m;
}

CMatrix random_hpd(std::size_t n, std::uint64_t seed) {
  CMatrix a = random_matrix(n + 4, n, seed);
  CMatrix g = linalg::overlap(a, a);
  for (std::size_t i = 0; i < n; ++i) g(i, i) += 0.1;
  return g;
}

Complex op_elem(char op, const CMatrix& m, std::size_t i, std::size_t j) {
  if (op == 'N') return m(i, j);
  if (op == 'T') return m(j, i);
  return std::conj(m(j, i));
}

void check_gemm(char opa, char opb, std::size_t m, std::size_t n, std::size_t k) {
  const CMatrix a = (opa == 'N') ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  const CMatrix b = (opb == 'N') ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  CMatrix c = random_matrix(m, n, 3);
  const CMatrix c0 = c;
  const Complex alpha{1.3, -0.2}, beta{0.4, 0.9};
  linalg::gemm(opa, opb, alpha, a, b, beta, c);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      Complex acc{0, 0};
      for (std::size_t l = 0; l < k; ++l) acc += op_elem(opa, a, i, l) * op_elem(opb, b, l, j);
      const Complex expect = alpha * acc + beta * c0(i, j);
      EXPECT_NEAR(std::abs(c(i, j) - expect), 0.0, 1e-10 * (1.0 + std::abs(expect)))
          << opa << opb << " (" << i << "," << j << ")";
    }
  }
}

struct GemmCase {
  char opa, opb;
  std::size_t m, n, k;
};

class GemmOps : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmOps, MatchesNaiveTripleLoop) {
  const auto p = GetParam();
  check_gemm(p.opa, p.opb, p.m, p.n, p.k);
}

INSTANTIATE_TEST_SUITE_P(AllOps, GemmOps,
                         ::testing::Values(GemmCase{'N', 'N', 5, 7, 4}, GemmCase{'C', 'N', 6, 3, 9},
                                           GemmCase{'N', 'C', 4, 4, 5}, GemmCase{'T', 'N', 3, 8, 6},
                                           GemmCase{'C', 'C', 5, 5, 5}, GemmCase{'N', 'N', 1, 1, 1},
                                           GemmCase{'C', 'N', 16, 16, 64},
                                           GemmCase{'N', 'T', 2, 9, 3}));

TEST(Blas, OverlapIsConjugateTransposeSymmetric) {
  CMatrix x = random_matrix(40, 6, 11);
  CMatrix s = linalg::overlap(x, x);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(std::abs(s(i, j) - std::conj(s(j, i))), 0.0, 1e-12);
  // Diagonal = squared column norms.
  for (std::size_t j = 0; j < 6; ++j) {
    const double n2 = linalg::nrm2({x.col(j), x.rows()});
    EXPECT_NEAR(s(j, j).real(), n2 * n2, 1e-10);
  }
}

TEST(Blas, Level1Operations) {
  Rng rng(3);
  std::vector<Complex> x(17), y(17);
  for (auto& v : x) v = rng.complex_normal();
  for (auto& v : y) v = rng.complex_normal();
  const auto y0 = y;
  const Complex a{0.3, -1.2};
  linalg::axpy(a, x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - (y0[i] + a * x[i])), 0.0, 1e-13);

  Complex d{0, 0};
  for (std::size_t i = 0; i < x.size(); ++i) d += std::conj(x[i]) * y[i];
  EXPECT_NEAR(std::abs(linalg::dotc(x, y) - d), 0.0, 1e-12);

  linalg::scal(Complex{2.0, 0.0}, y);
  EXPECT_NEAR(std::abs(y[3] - 2.0 * (y0[3] + a * x[3])), 0.0, 1e-12);
}

TEST(Cholesky, ReconstructsMatrix) {
  const std::size_t n = 12;
  CMatrix a = random_hpd(n, 21);
  CMatrix l = a;
  linalg::potrf_lower(l);
  // Check L L^H == A and the strict upper triangle is zero.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < j; ++i) EXPECT_EQ(l(i, j), (Complex{0, 0}));
  CMatrix rec(n, n);
  linalg::gemm('N', 'C', Complex{1, 0}, l, l, Complex{0, 0}, rec);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(rec(i, j) - a(i, j)), 0.0, 1e-9);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  CMatrix a(3, 3);
  a(0, 0) = Complex{1, 0};
  a(1, 1) = Complex{-2, 0};
  a(2, 2) = Complex{1, 0};
  EXPECT_THROW(linalg::potrf_lower(a), Error);
}

TEST(Cholesky, TrsmOrthonormalizes) {
  CMatrix x = random_matrix(50, 8, 31);
  CMatrix s = linalg::overlap(x, x);
  linalg::potrf_lower(s);
  linalg::trsm_right_lower_conj(x, s);
  CMatrix q = linalg::overlap(x, x);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(std::abs(q(i, j) - (i == j ? Complex{1, 0} : Complex{0, 0})), 0.0, 1e-10);
}

TEST(Cholesky, TriangularSolves) {
  const std::size_t n = 9;
  CMatrix a = random_hpd(n, 41);
  CMatrix l = a;
  linalg::potrf_lower(l);
  Rng rng(5);
  std::vector<Complex> b(n), x(n);
  for (auto& v : b) v = rng.complex_normal();
  x = b;
  linalg::solve_lower(l, x.data());
  // L x' == b
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0, 0};
    for (std::size_t k2 = 0; k2 <= i; ++k2) acc += l(i, k2) * x[k2];
    EXPECT_NEAR(std::abs(acc - b[i]), 0.0, 1e-10);
  }
  auto y = b;
  linalg::solve_lower_conj(l, y.data());
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{0, 0};
    for (std::size_t k2 = i; k2 < n; ++k2) acc += std::conj(l(k2, i)) * y[k2];
    EXPECT_NEAR(std::abs(acc - b[i]), 0.0, 1e-10);
  }
}

class HeigSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeigSizes, DiagonalizesRandomHermitian) {
  const std::size_t n = GetParam();
  const CMatrix raw = random_matrix(n, n, 50 + n);
  // Hermitize into a fresh matrix (in place would mix updated entries).
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) a(i, j) = 0.5 * (raw(i, j) + std::conj(raw(j, i)));
  std::vector<double> ev;
  CMatrix v;
  linalg::heig(a, ev, v);

  // Sorted ascending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(ev[i - 1], ev[i] + 1e-12);
  // Unitary eigenvectors.
  CMatrix vv = linalg::overlap(v, v);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(std::abs(vv(i, j) - (i == j ? Complex{1, 0} : Complex{0, 0})), 0.0, 1e-9);
  // A V == V diag(ev).
  CMatrix av(n, n);
  linalg::gemm('N', 'N', Complex{1, 0}, a, v, Complex{0, 0}, av);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(av(i, j) - ev[j] * v(i, j)), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeigSizes, ::testing::Values(1, 2, 3, 5, 8, 13, 24, 48));

TEST(Heig, HandlesDegenerateSpectrum) {
  const std::size_t n = 6;
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = Complex{(i < 3) ? 1.0 : 2.0, 0.0};
  std::vector<double> ev;
  CMatrix v;
  linalg::heig(a, ev, v);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[2], 1.0, 1e-12);
  EXPECT_NEAR(ev[3], 2.0, 1e-12);
  EXPECT_NEAR(ev[5], 2.0, 1e-12);
}

TEST(Lsq, SolvesConsistentSystemExactly) {
  CMatrix a = random_matrix(10, 4, 71);
  Rng rng(8);
  std::vector<Complex> xtrue(4);
  for (auto& v : xtrue) v = rng.complex_normal();
  std::vector<Complex> b(10, Complex{0, 0});
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 10; ++i) b[i] += a(i, j) * xtrue[j];
  auto x = linalg::lsq_solve(a, b, 0.0);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(std::abs(x[j] - xtrue[j]), 0.0, 1e-8);
}

TEST(Lsq, ResidualOrthogonalToColumnSpace) {
  CMatrix a = random_matrix(12, 3, 81);
  Rng rng(9);
  std::vector<Complex> b(12);
  for (auto& v : b) v = rng.complex_normal();
  auto x = linalg::lsq_solve(a, b, 0.0);
  std::vector<Complex> r = b;
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 12; ++i) r[i] -= a(i, j) * x[j];
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(std::abs(linalg::dotc({a.col(j), 12}, r)), 0.0, 1e-9);
}

TEST(Lsq, RegularizationShrinksSolution) {
  CMatrix a = random_matrix(8, 4, 91);
  Rng rng(10);
  std::vector<Complex> b(8);
  for (auto& v : b) v = rng.complex_normal();
  auto x0 = linalg::lsq_solve(a, b, 1e-12);
  auto x1 = linalg::lsq_solve(a, b, 10.0);
  double n0 = 0, n1 = 0;
  for (std::size_t j = 0; j < 4; ++j) {
    n0 += std::norm(x0[j]);
    n1 += std::norm(x1[j]);
  }
  EXPECT_LT(n1, n0);
}

TEST(Lsq, GramVariantMatchesDirect) {
  CMatrix a = random_matrix(9, 3, 101);
  Rng rng(11);
  std::vector<Complex> b(9);
  for (auto& v : b) v = rng.complex_normal();
  auto x_direct = linalg::lsq_solve(a, b, 1e-10);
  CMatrix gram = linalg::overlap(a, a);
  std::vector<Complex> rhs(3);
  for (std::size_t j = 0; j < 3; ++j) rhs[j] = linalg::dotc({a.col(j), 9}, b);
  auto x_gram = linalg::lsq_solve_gram(gram, rhs, 1e-10);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(std::abs(x_direct[j] - x_gram[j]), 0.0, 1e-10);
}

}  // namespace
}  // namespace pwdft
