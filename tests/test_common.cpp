#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "ham/ace.hpp"
#include "ham/fock.hpp"
#include "td/mts.hpp"

namespace pwdft {
namespace {

TEST(Constants, UnitConversionsRoundTrip) {
  EXPECT_NEAR(constants::attoseconds_to_au(constants::as_per_au_time), 1.0, 1e-14);
  EXPECT_NEAR(constants::femtoseconds_to_au(1.0) * constants::fs_per_au_time, 1.0, 1e-14);
  // 50 as (the paper's PT-CN step) is ~2.067 a.u.
  EXPECT_NEAR(constants::attoseconds_to_au(50.0), 2.0671, 1e-3);
  // 380 nm photon: 3.263 eV.
  EXPECT_NEAR(constants::photon_energy_ha(380.0) / constants::hartree_per_ev, 3.2627, 1e-3);
  // Si lattice constant: 5.43 A = 10.2613 bohr.
  EXPECT_NEAR(5.43 * constants::bohr_per_angstrom, 10.2612, 1e-3);
}

TEST(Check, ThrowsWithMessage) {
  try {
    PWDFT_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { EXPECT_NO_THROW(PWDFT_CHECK(2 + 2 == 4)); }

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.integer(), b.integer());
}

TEST(Rng, ComplexNormalHasUnitVariance) {
  Rng rng(7);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(rng.complex_normal());
  EXPECT_NEAR(acc / n, 1.0, 0.05);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(TimerRegistry, AccumulatesPhases) {
  TimerRegistry reg;
  reg.add("fock", 1.5);
  reg.add("fock", 0.5);
  reg.add("density", 0.25);
  EXPECT_DOUBLE_EQ(reg.total("fock"), 2.0);
  EXPECT_DOUBLE_EQ(reg.total("density"), 0.25);
  EXPECT_DOUBLE_EQ(reg.total("missing"), 0.0);
  {
    ScopedTimer st(reg, "scoped");
  }
  EXPECT_GE(reg.total("scoped"), 0.0);
  reg.clear();
  EXPECT_DOUBLE_EQ(reg.total("fock"), 0.0);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row("alpha", 3.14159);
  t.row("bb", 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);  // default 3 decimals
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, WritesCsv) {
  Table t({"a", "b"});
  t.row(1, 2);
  const std::string path = "/tmp/pwdft_test_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.add_cell("v"), Error);
}

// The shared strict env parser (common/env.hpp): unset falls back, valid
// forms parse, and malformed values throw instead of silently resolving to
// a default — the contract every PWDFT_* knob now follows.
TEST(Env, FlagAcceptsCanonicalFormsCaseInsensitively) {
  const char* name = "PWDFT_TEST_FLAG";
  unsetenv(name);
  EXPECT_TRUE(env::flag(name, true));
  EXPECT_FALSE(env::flag(name, false));
  for (const char* v : {"1", "on", "ON", "true", "TRUE", "yes", "Yes"}) {
    setenv(name, v, 1);
    EXPECT_TRUE(env::flag(name, false)) << v;
  }
  for (const char* v : {"0", "off", "OFF", "false", "False", "no", "NO"}) {
    setenv(name, v, 1);
    EXPECT_FALSE(env::flag(name, true)) << v;
  }
  unsetenv(name);
}

TEST(Env, FlagRejectsGarbageLoudly) {
  const char* name = "PWDFT_TEST_FLAG";
  for (const char* v : {"2", "enabled", "y", "t", "", " 1", "on "}) {
    setenv(name, v, 1);
    EXPECT_THROW(env::flag(name, false), Error) << "'" << v << "'";
  }
  unsetenv(name);
}

TEST(Env, IntegerParsesFullStringInRange) {
  const char* name = "PWDFT_TEST_INT";
  unsetenv(name);
  EXPECT_EQ(env::integer(name, 7, 1, 10), 7);
  // The fallback may lie outside [min, max]: range-checks apply to set values only.
  EXPECT_EQ(env::integer(name, 0, 1, 10), 0);
  setenv(name, "4", 1);
  EXPECT_EQ(env::integer(name, 7, 1, 10), 4);
  setenv(name, "-3", 1);
  EXPECT_EQ(env::integer(name, 0, -10, 10), -3);
  unsetenv(name);
}

TEST(Env, IntegerRejectsGarbageAndOutOfRangeLoudly) {
  const char* name = "PWDFT_TEST_INT";
  for (const char* v : {"four", "", "4x", "1.5", " 4", "99999999999999999999"}) {
    setenv(name, v, 1);
    EXPECT_THROW(env::integer(name, 0, 0, 100), Error) << "'" << v << "'";
  }
  setenv(name, "11", 1);
  EXPECT_THROW(env::integer(name, 0, 1, 10), Error);
  setenv(name, "0", 1);
  EXPECT_THROW(env::integer(name, 0, 1, 10), Error);
  unsetenv(name);
}

// The knob resolvers ride the strict parser: the exact failure modes the
// bugfix targets (PWDFT_MTS_INTERVAL=four silently disabling MTS,
// PWDFT_ACE=yes silently off) now throw / parse correctly.
TEST(Env, KnobResolversUseStrictParsing) {
  setenv("PWDFT_MTS_INTERVAL", "four", 1);
  EXPECT_THROW(td::mts_interval_env_default(), Error);
  setenv("PWDFT_MTS_INTERVAL", "3", 1);
  EXPECT_EQ(td::mts_interval_env_default(), 3);
  unsetenv("PWDFT_MTS_INTERVAL");

  setenv("PWDFT_ACE", "yes", 1);
  EXPECT_TRUE(ham::ace_env_default());
  setenv("PWDFT_ACE", "On", 1);
  EXPECT_TRUE(ham::ace_env_default());
  setenv("PWDFT_ACE", "enabled", 1);
  EXPECT_THROW(ham::ace_env_default(), Error);
  unsetenv("PWDFT_ACE");

  setenv("PWDFT_ACE_REFRESH", "0", 1);
  EXPECT_THROW(ham::ace_refresh_env_default(), Error);
  unsetenv("PWDFT_ACE_REFRESH");

  setenv("PWDFT_BAND_REBALANCE", "TRUE", 1);
  EXPECT_TRUE(ham::band_rebalance_env_default());
  unsetenv("PWDFT_BAND_REBALANCE");
}

}  // namespace
}  // namespace pwdft
