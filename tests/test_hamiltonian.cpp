#include <gtest/gtest.h>

#include "crystal/ewald.hpp"
#include "ham/density.hpp"
#include "ham/energy.hpp"
#include "ham/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

struct HamFixture {
  HamFixture(double ecut = 4.0, int dense = 1, bool hybrid = true)
      : setup(test::make_si8_setup(ecut, dense)),
        species(pseudo::PseudoSpecies::silicon(true)),
        options(make_options(hybrid)),
        hamiltonian(setup, species, options) {}

  static ham::HamiltonianOptions make_options(bool hybrid) {
    auto o = test::fast_hybrid_options();
    o.hybrid.enabled = hybrid;
    return o;
  }

  void prime_with_density(const CMatrix& psi, std::span<const double> occ) {
    par::SerialComm comm;
    auto rho = ham::compute_density(setup, hamiltonian.fft_dense(), psi, occ, comm);
    hamiltonian.update_density(rho);
    if (hamiltonian.hybrid_enabled())
      hamiltonian.set_exchange_orbitals(psi, occ, par::BlockPartition(psi.cols(), 1), comm);
  }

  ham::PlanewaveSetup setup;
  pseudo::PseudoSpecies species;
  ham::HamiltonianOptions options;
  ham::Hamiltonian hamiltonian;
};

TEST(Hamiltonian, IsHermitianWithHybridAndNonlocal) {
  HamFixture f;
  auto psi = test::random_orthonormal(f.setup, 6, 31);
  std::vector<double> occ(6, 2.0);
  f.prime_with_density(psi, occ);

  auto x = test::random_orthonormal(f.setup, 4, 33);
  CMatrix hx;
  par::SerialComm comm;
  f.hamiltonian.apply(x, hx, comm);
  CMatrix m = linalg::overlap(x, hx);
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = 0; b < 4; ++b)
      EXPECT_NEAR(std::abs(m(a, b) - std::conj(m(b, a))), 0.0, 1e-9);
}

TEST(Hamiltonian, ApplyIsLinear) {
  HamFixture f;
  auto psi = test::random_orthonormal(f.setup, 4, 35);
  std::vector<double> occ(4, 2.0);
  f.prime_with_density(psi, occ);

  auto x = test::random_orthonormal(f.setup, 2, 37);
  par::SerialComm comm;
  CMatrix hx;
  f.hamiltonian.apply(x, hx, comm);

  CMatrix x2 = x;
  const Complex c{1.3, -0.7};
  linalg::scal(c, {x2.data(), x2.size()});
  CMatrix hx2;
  f.hamiltonian.apply(x2, hx2, comm);
  for (std::size_t i = 0; i < hx.size(); ++i)
    EXPECT_NEAR(std::abs(hx2.data()[i] - c * hx.data()[i]), 0.0, 1e-10);
}

TEST(Hamiltonian, KineticCoefficientsFollowVectorPotential) {
  HamFixture f(4.0, 1, false);
  const grid::Vec3 a{0.1, -0.2, 0.3};
  f.hamiltonian.set_vector_potential(a);
  const auto& kin = f.hamiltonian.kinetic();
  const auto& gv = f.setup.sphere.gvec();
  for (std::size_t i = 0; i < gv.size(); ++i) {
    const grid::Vec3 ga = grid::add(gv[i], a);
    EXPECT_NEAR(kin[i], 0.5 * grid::norm2(ga), 1e-14);
  }
}

TEST(Hamiltonian, UniformDensityGivesUniformXcPotential) {
  HamFixture f(4.0, 1, false);
  const double rho0 = 0.08;
  std::vector<double> rho(f.setup.n_dense(), rho0);
  f.hamiltonian.update_density(rho);
  const auto expect = xc::lda_pz(rho0);
  for (double v : f.hamiltonian.v_xc()) EXPECT_NEAR(v, expect.vxc, 1e-12);
  // Hartree of a uniform (neutralized) density vanishes.
  for (double v : f.hamiltonian.v_hartree()) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Hamiltonian, EwaldMatchesStandaloneComputation) {
  HamFixture f(4.0, 1, false);
  EXPECT_NEAR(f.hamiltonian.ewald_energy(), crystal::ewald_energy(f.setup.crystal), 1e-9);
}

TEST(Energy, BreakdownIsFiniteAndFockNegative) {
  HamFixture f;
  auto psi = test::random_orthonormal(f.setup, 16, 41);
  std::vector<double> occ(16, 2.0);
  par::SerialComm comm;
  auto rho = ham::compute_density(f.setup, f.hamiltonian.fft_dense(), psi, occ, comm);
  f.hamiltonian.update_density(rho);
  f.hamiltonian.set_exchange_orbitals(psi, occ, par::BlockPartition(16, 1), comm);
  const auto e = ham::compute_energy(f.hamiltonian, psi, occ, rho, comm);
  EXPECT_TRUE(std::isfinite(e.total()));
  EXPECT_GT(e.kinetic, 0.0);
  EXPECT_LT(e.fock, 0.0);
  EXPECT_GE(e.hartree, 0.0);
  EXPECT_LT(e.xc, 0.0);
  EXPECT_GE(e.nonlocal_ps, 0.0);  // our synthetic projectors have D > 0
}

TEST(Energy, KineticMatchesDirectSum) {
  HamFixture f(4.0, 1, false);
  auto psi = test::random_orthonormal(f.setup, 3, 43);
  std::vector<double> occ(3, 2.0);
  par::SerialComm comm;
  auto rho = ham::compute_density(f.setup, f.hamiltonian.fft_dense(), psi, occ, comm);
  f.hamiltonian.update_density(rho);
  const auto e = ham::compute_energy(f.hamiltonian, psi, occ, rho, comm);
  const auto& g2 = f.setup.sphere.g2();
  double t = 0.0;
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < f.setup.n_g(); ++i)
      t += 2.0 * 0.5 * g2[i] * std::norm(psi(i, j));
  EXPECT_NEAR(e.kinetic, t, 1e-10 * (1.0 + t));
}

TEST(Hamiltonian, HybridToggleControlsFockPath) {
  HamFixture f;
  auto psi = test::random_orthonormal(f.setup, 4, 45);
  std::vector<double> occ(4, 2.0);
  f.prime_with_density(psi, occ);
  par::SerialComm comm;

  CMatrix h_on;
  f.hamiltonian.apply(psi, h_on, comm);
  f.hamiltonian.set_hybrid_enabled(false);
  CMatrix h_off;
  f.hamiltonian.apply(psi, h_off, comm);
  EXPECT_GT(test::max_abs_diff(h_on, h_off), 1e-8);  // exchange changes H
}

TEST(Hamiltonian, DenseFactorTwoAgreesOnSmoothStates) {
  // The same low-G orbital set should give nearly identical H matrix
  // elements on the refined density grid (aliasing differences only).
  HamFixture f1(4.0, 1, false);
  HamFixture f2(4.0, 2, false);
  auto psi = test::random_orthonormal(f1.setup, 4, 47);
  std::vector<double> occ(4, 2.0);
  f1.prime_with_density(psi, occ);
  f2.prime_with_density(psi, occ);
  par::SerialComm comm;
  CMatrix h1, h2;
  f1.hamiltonian.apply(psi, h1, comm);
  f2.hamiltonian.apply(psi, h2, comm);
  CMatrix m1 = linalg::overlap(psi, h1);
  CMatrix m2 = linalg::overlap(psi, h2);
  for (std::size_t a = 0; a < 4; ++a)
    EXPECT_NEAR(m1(a, a).real(), m2(a, a).real(), 0.05 * (1.0 + std::abs(m1(a, a).real())));
}

TEST(Hamiltonian, NonlocalStorageMatchesPaperScale) {
  // Paper: 432 MB of nonlocal projectors for 1536 atoms. Our synthetic
  // projectors are different objects; just verify per-atom storage is in a
  // plausible range and scales linearly with atom count.
  HamFixture f(4.0, 1, false);
  ASSERT_NE(f.hamiltonian.nonlocal(), nullptr);
  const auto b8 = f.hamiltonian.nonlocal()->storage_bytes();
  EXPECT_GT(b8, 0u);

  auto setup16 = ham::PlanewaveSetup(crystal::Crystal::silicon_supercell(1, 1, 2), 4.0, 1);
  pseudo::NonlocalProjectors nl16(setup16.crystal, f.species, setup16.dense_grid,
                                  setup16.crystal.lattice());
  // Storage is linear in the atom count up to per-atom grid-alignment
  // variation of the sphere point counts (~10%).
  EXPECT_NEAR(static_cast<double>(nl16.storage_bytes()) / static_cast<double>(b8), 2.0, 0.3);
}

}  // namespace
}  // namespace pwdft
