#include <gtest/gtest.h>

#include "common/exec.hpp"
#include "ham/ace.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"
#include "parallel/thread_comm.hpp"
#include "td/field.hpp"
#include "td/ptcn.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

xc::HybridParams hse() { return xc::HybridParams{true, 0.25, 0.11}; }

/// Restores the engine width on scope exit so tests compose.
struct ThreadGuard {
  ~ThreadGuard() { exec::set_num_threads(1); }
};

TEST(Ace, ExactOnItsOwnOrbitals) {
  // The defining ACE property: VX_ACE Phi == VX Phi.
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 6, 3);
  std::vector<double> occ(6, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(6, 1);

  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  CMatrix y_exact(setup.n_g(), 6, Complex{0, 0});
  fock.apply_add(phi, y_exact, comm);
  CMatrix y_ace(setup.n_g(), 6, Complex{0, 0});
  ace.apply_add(phi, y_ace, comm);
  EXPECT_LT(test::max_abs_diff(y_exact, y_ace), 1e-8);
}

TEST(Ace, OperatorIsNegativeSemidefinite) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 5);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  auto x = test::random_orthonormal(setup, 4, 7);
  CMatrix y(setup.n_g(), 4, Complex{0, 0});
  ace.apply_add(x, y, comm);
  for (std::size_t j = 0; j < 4; ++j) {
    const double q = linalg::dotc({x.col(j), setup.n_g()}, {y.col(j), setup.n_g()}).real();
    EXPECT_LE(q, 1e-10);
  }
}

TEST(Ace, HermitianOnArbitraryStates) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 9);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  auto x = test::random_orthonormal(setup, 4, 11);
  CMatrix y(setup.n_g(), 4, Complex{0, 0});
  ace.apply_add(x, y, comm);
  CMatrix m = linalg::overlap(x, y);
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = 0; b < 4; ++b)
      EXPECT_NEAR(std::abs(m(a, b) - std::conj(m(b, a))), 0.0, 1e-10);
}

TEST(Ace, RequiresBuildBeforeApply) {
  auto setup = test::make_si8_setup(3.0, 1);
  ham::AceOperator ace(setup);
  CMatrix x(setup.n_g(), 1), y(setup.n_g(), 1);
  par::SerialComm comm;
  EXPECT_THROW(ace.apply_add(x, y, comm), Error);
}

TEST(Ace, DistributedBuildAndApplyMatchSerial) {
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 13);
  std::vector<double> occ(nb, 2.0);

  par::SerialComm serial;
  ham::FockOperator fock_ref(setup, hse());
  fock_ref.set_orbitals(phi, occ, par::BlockPartition(nb, 1), serial);
  ham::AceOperator ace_ref(setup);
  ace_ref.build(fock_ref, phi, serial);
  CMatrix y_ref(setup.n_g(), nb, Complex{0, 0});
  ace_ref.apply_add(phi, y_ref, serial);

  for (int np : {2, 4}) {
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      auto setup_loc = test::make_si8_setup(3.0, 1);
      par::BlockPartition bands(nb, np);
      ham::FockOperator fock(setup_loc, hse());
      CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
      fock.set_orbitals(phi_loc, occ, bands, c);
      ham::AceOperator ace(setup_loc);
      ace.build(fock, phi_loc, c);
      CMatrix y_loc(setup_loc.n_g(), phi_loc.cols(), Complex{0, 0});
      ace.apply_add(phi_loc, y_loc, c);
      CMatrix expect = test::band_slice(y_ref, bands, c.rank());
      EXPECT_LT(test::max_abs_diff(y_loc, expect), 1e-8);
    });
  }
}

TEST(Ace, PtCnStepWithAceMatchesDirectFock) {
  // Within each PT-CN SCF iteration the exchange orbitals are the current
  // iterate, and ACE is exact on them: the trajectories must coincide.
  const std::size_t nb = 16;  // full Si8 occupancy keeps the SCF well behaved
  auto build = [&](bool use_ace) {
    auto opt = test::fast_hybrid_options();
    opt.use_ace = use_ace;
    return opt;
  };
  auto setup1 = test::make_si8_setup(3.0, 1);
  auto setup2 = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::Hamiltonian h_direct(setup1, species, build(false));
  ham::Hamiltonian h_ace(setup2, species, build(true));

  auto psi0 = test::random_orthonormal(setup1, nb, 15);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-7;
  opt.max_scf = 100;
  opt.sp_comm = false;
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix psi_a = psi0, psi_b = psi0;
  td::PtCnPropagator p1(h_direct, bands, opt, 1);
  td::PtCnPropagator p2(h_ace, bands, opt, 1);
  auto r1 = p1.step(psi_a, occ, 0.0, kick, comm);
  auto r2 = p2.step(psi_b, occ, 0.0, kick, comm);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(test::max_abs_diff(psi_a, psi_b), 1e-5);
}

TEST(Ace, BuildAndApplyBitIdenticalAcrossWidthDispatchPipeline) {
  // The fixed-reduction-order contract (docs/threading.md) extended to
  // ACE: build (exact Fock apply + serial dense algebra on transposed
  // G-layout blocks) and apply_add must produce identical bits whatever
  // the engine width, FFT dispatch path, and operator pipeline mode.
  ThreadGuard guard;
  auto setup = test::make_si8_setup(3.0, 1);
  const std::size_t nb = 6;
  CMatrix phi = test::random_orthonormal(setup, nb, 17);
  CMatrix x = test::random_orthonormal(setup, nb, 19);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix ref;
  bool have_ref = false;
  for (std::size_t nt : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (fft::ExecPath dispatch : {fft::ExecPath::kTaskGraph, fft::ExecPath::kForkJoin}) {
      for (fft::PipelineMode pipe : {fft::PipelineMode::kFused, fft::PipelineMode::kStaged}) {
        exec::set_num_threads(nt);
        ham::FockOptions fopt;
        fopt.fft_dispatch = dispatch;
        fopt.op_pipeline = pipe;
        ham::FockOperator fock(setup, hse(), fopt);
        fock.set_orbitals(phi, occ, bands, comm);
        ham::AceOperator ace(setup);
        ace.build(fock, phi, comm);
        CMatrix y(setup.n_g(), nb, Complex{0, 0});
        ace.apply_add(x, y, comm);
        if (!have_ref) {
          ref = y;
          have_ref = true;
        } else {
          EXPECT_EQ(test::max_abs_diff(y, ref), 0.0)
              << "nt=" << nt << " dispatch=" << static_cast<int>(dispatch)
              << " pipeline=" << static_cast<int>(pipe);
        }
      }
    }
  }
}

/// One Si8 Hamiltonian + PT-CN propagator with ACE exchange and the given
/// MTS settings (serial, full occupancy).
struct MtsHarness {
  explicit MtsHarness(int mts_interval, double drift_tol, bool use_ace = true)
      : setup(test::make_si8_setup(3.0, 1)),
        species(pseudo::PseudoSpecies::silicon(true)),
        hamiltonian(setup, species, make_opt(use_ace)),
        bands(nb, 1),
        psi(test::random_orthonormal(setup, nb, 15)),
        occ(nb, 2.0),
        kick({0.0, 0.0, 0.02}, -1.0),
        prop(hamiltonian, bands, make_pt(mts_interval, drift_tol), 1) {}
  static ham::HamiltonianOptions make_opt(bool use_ace) {
    auto o = test::fast_hybrid_options();
    o.use_ace = use_ace;
    return o;
  }
  static td::PtCnOptions make_pt(int mts_interval, double drift_tol) {
    td::PtCnOptions o;
    o.dt = 1.0;
    o.rho_tol = 1e-7;
    o.max_scf = 100;
    o.sp_comm = false;
    o.mts_interval = mts_interval;
    o.mts_drift_tol = drift_tol;
    return o;
  }
  td::PtCnStepReport step(double t) { return prop.step(psi, occ, t, kick, comm); }

  static constexpr std::size_t nb = 16;  // full Si8 occupancy
  ham::PlanewaveSetup setup;
  pseudo::PseudoSpecies species;
  ham::Hamiltonian hamiltonian;
  par::SerialComm comm;
  par::BlockPartition bands;
  CMatrix psi;
  std::vector<double> occ;
  td::DeltaKick kick;
  td::PtCnPropagator prop;
};

TEST(Mts, FreezesExchangeBetweenRefreshSteps) {
  // ACE + MTS interval 3 with the drift bound disabled: the projectors are
  // rebuilt on steps 0 and 3 only, and the frozen steps in between perform
  // ZERO exact Fock pair solves — the entire point of the compression.
  MtsHarness h(/*mts_interval=*/3, /*drift_tol=*/1e9);
  double t = 0.0;
  for (int s = 0; s < 4; ++s, t += 1.0) {
    const auto builds_before = h.hamiltonian.ace().builds();
    const auto solves_before = h.hamiltonian.fock().pair_solves();
    auto rep = h.step(t);
    EXPECT_TRUE(rep.converged) << "step " << s;
    const bool expect_refresh = (s % 3 == 0);
    EXPECT_EQ(rep.exchange_refreshed, expect_refresh) << "step " << s;
    EXPECT_EQ(h.hamiltonian.ace().builds() - builds_before, expect_refresh ? 1u : 0u)
        << "step " << s;
    if (expect_refresh) {
      EXPECT_GT(h.hamiltonian.fock().pair_solves(), solves_before) << "step " << s;
    } else {
      EXPECT_EQ(h.hamiltonian.fock().pair_solves(), solves_before) << "step " << s;
      EXPECT_GT(rep.mts_drift, 0.0) << "step " << s;
    }
  }
}

TEST(Mts, DriftBoundForcesEarlyRefresh) {
  // A zero drift tolerance trips the monitored bound on every step after
  // the first: the cadence (interval 100) never comes due, yet every step
  // must rebuild — the forced-early-refresh path.
  MtsHarness h(/*mts_interval=*/100, /*drift_tol=*/0.0);
  double t = 0.0;
  for (int s = 0; s < 3; ++s, t += 1.0) {
    const auto builds_before = h.hamiltonian.ace().builds();
    auto rep = h.step(t);
    EXPECT_TRUE(rep.converged) << "step " << s;
    EXPECT_TRUE(rep.exchange_refreshed) << "step " << s;
    EXPECT_EQ(h.hamiltonian.ace().builds() - builds_before, 1u) << "step " << s;
  }
}

TEST(Mts, TrajectoryIndependentOfInterleavedRegistrations) {
  // Per-step energy recording registers the *current* orbitals as exchange
  // orbitals between propagator steps (core::Simulation::record). The MTS
  // scheduler must detect the foreign registration through the exchange
  // serial and re-pin its frozen snapshot, so the trajectory is bit-for-bit
  // the same whether or not anything registered behind its back.
  MtsHarness clean(/*mts_interval=*/3, /*drift_tol=*/1e9);
  MtsHarness dirty(/*mts_interval=*/3, /*drift_tol=*/1e9);
  double t = 0.0;
  for (int s = 0; s < 3; ++s, t += 1.0) {
    clean.step(t);
    dirty.step(t);
    // Foreign registration with the *moved* orbitals, as energy recording
    // would do after every step.
    dirty.hamiltonian.set_exchange_orbitals(dirty.psi, dirty.occ, dirty.bands, dirty.comm);
  }
  ASSERT_EQ(clean.psi.size(), dirty.psi.size());
  EXPECT_EQ(test::max_abs_diff(clean.psi, dirty.psi), 0.0);
}

TEST(Mts, AceRefreshCadenceFollowsRegistrationCounter) {
  // PWDFT_ACE_REFRESH semantics at the Hamiltonian level, without MTS:
  // every k-th set_exchange_orbitals() rebuilds the projectors, and
  // request_ace_refresh() forces the next registration to rebuild.
  auto setup = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  auto opt = test::fast_hybrid_options();
  opt.use_ace = true;
  opt.ace_refresh = 3;
  ham::Hamiltonian h(setup, species, opt);
  const std::size_t nb = 8;
  auto phi = test::random_orthonormal(setup, nb, 21);
  std::vector<double> occ(nb, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  for (int reg = 0; reg < 6; ++reg) {
    const auto before = h.ace().builds();
    h.set_exchange_orbitals(phi, occ, bands, comm);
    EXPECT_EQ(h.ace().builds() - before, reg % 3 == 0 ? 1u : 0u) << "registration " << reg;
  }
  h.request_ace_refresh();
  const auto before = h.ace().builds();
  h.set_exchange_orbitals(phi, occ, bands, comm);
  EXPECT_EQ(h.ace().builds() - before, 1u);
}

}  // namespace
}  // namespace pwdft
