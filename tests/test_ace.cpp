#include <gtest/gtest.h>

#include "ham/ace.hpp"
#include "ham/density.hpp"
#include "linalg/blas.hpp"
#include "parallel/thread_comm.hpp"
#include "td/field.hpp"
#include "td/ptcn.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

xc::HybridParams hse() { return xc::HybridParams{true, 0.25, 0.11}; }

TEST(Ace, ExactOnItsOwnOrbitals) {
  // The defining ACE property: VX_ACE Phi == VX Phi.
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 6, 3);
  std::vector<double> occ(6, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(6, 1);

  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  CMatrix y_exact(setup.n_g(), 6, Complex{0, 0});
  fock.apply_add(phi, y_exact, comm);
  CMatrix y_ace(setup.n_g(), 6, Complex{0, 0});
  ace.apply_add(phi, y_ace, comm);
  EXPECT_LT(test::max_abs_diff(y_exact, y_ace), 1e-8);
}

TEST(Ace, OperatorIsNegativeSemidefinite) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 5);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  auto x = test::random_orthonormal(setup, 4, 7);
  CMatrix y(setup.n_g(), 4, Complex{0, 0});
  ace.apply_add(x, y, comm);
  for (std::size_t j = 0; j < 4; ++j) {
    const double q = linalg::dotc({x.col(j), setup.n_g()}, {y.col(j), setup.n_g()}).real();
    EXPECT_LE(q, 1e-10);
  }
}

TEST(Ace, HermitianOnArbitraryStates) {
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 9);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  ham::FockOperator fock(setup, hse());
  fock.set_orbitals(phi, occ, bands, comm);
  ham::AceOperator ace(setup);
  ace.build(fock, phi, comm);

  auto x = test::random_orthonormal(setup, 4, 11);
  CMatrix y(setup.n_g(), 4, Complex{0, 0});
  ace.apply_add(x, y, comm);
  CMatrix m = linalg::overlap(x, y);
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = 0; b < 4; ++b)
      EXPECT_NEAR(std::abs(m(a, b) - std::conj(m(b, a))), 0.0, 1e-10);
}

TEST(Ace, RequiresBuildBeforeApply) {
  auto setup = test::make_si8_setup(3.0, 1);
  ham::AceOperator ace(setup);
  CMatrix x(setup.n_g(), 1), y(setup.n_g(), 1);
  par::SerialComm comm;
  EXPECT_THROW(ace.apply_add(x, y, comm), Error);
}

TEST(Ace, DistributedBuildAndApplyMatchSerial) {
  const std::size_t nb = 8;
  auto setup = test::make_si8_setup(3.0, 1);
  auto phi = test::random_orthonormal(setup, nb, 13);
  std::vector<double> occ(nb, 2.0);

  par::SerialComm serial;
  ham::FockOperator fock_ref(setup, hse());
  fock_ref.set_orbitals(phi, occ, par::BlockPartition(nb, 1), serial);
  ham::AceOperator ace_ref(setup);
  ace_ref.build(fock_ref, phi, serial);
  CMatrix y_ref(setup.n_g(), nb, Complex{0, 0});
  ace_ref.apply_add(phi, y_ref, serial);

  for (int np : {2, 4}) {
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      auto setup_loc = test::make_si8_setup(3.0, 1);
      par::BlockPartition bands(nb, np);
      ham::FockOperator fock(setup_loc, hse());
      CMatrix phi_loc = test::band_slice(phi, bands, c.rank());
      fock.set_orbitals(phi_loc, occ, bands, c);
      ham::AceOperator ace(setup_loc);
      ace.build(fock, phi_loc, c);
      CMatrix y_loc(setup_loc.n_g(), phi_loc.cols(), Complex{0, 0});
      ace.apply_add(phi_loc, y_loc, c);
      CMatrix expect = test::band_slice(y_ref, bands, c.rank());
      EXPECT_LT(test::max_abs_diff(y_loc, expect), 1e-8);
    });
  }
}

TEST(Ace, PtCnStepWithAceMatchesDirectFock) {
  // Within each PT-CN SCF iteration the exchange orbitals are the current
  // iterate, and ACE is exact on them: the trajectories must coincide.
  const std::size_t nb = 16;  // full Si8 occupancy keeps the SCF well behaved
  auto build = [&](bool use_ace) {
    auto opt = test::fast_hybrid_options();
    opt.use_ace = use_ace;
    return opt;
  };
  auto setup1 = test::make_si8_setup(3.0, 1);
  auto setup2 = test::make_si8_setup(3.0, 1);
  auto species = pseudo::PseudoSpecies::silicon(true);
  ham::Hamiltonian h_direct(setup1, species, build(false));
  ham::Hamiltonian h_ace(setup2, species, build(true));

  auto psi0 = test::random_orthonormal(setup1, nb, 15);
  std::vector<double> occ(nb, 2.0);
  td::DeltaKick kick({0.0, 0.0, 0.02}, -1.0);
  td::PtCnOptions opt;
  opt.dt = 1.0;
  opt.rho_tol = 1e-7;
  opt.max_scf = 100;
  opt.sp_comm = false;
  par::SerialComm comm;
  par::BlockPartition bands(nb, 1);

  CMatrix psi_a = psi0, psi_b = psi0;
  td::PtCnPropagator p1(h_direct, bands, opt, 1);
  td::PtCnPropagator p2(h_ace, bands, opt, 1);
  auto r1 = p1.step(psi_a, occ, 0.0, kick, comm);
  auto r2 = p2.step(psi_b, occ, 0.0, kick, comm);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(test::max_abs_diff(psi_a, psi_b), 1e-5);
}

}  // namespace
}  // namespace pwdft
