#include <gtest/gtest.h>

#include "fft/fft3d.hpp"
#include "ham/fock.hpp"
#include "linalg/blas.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

xc::HybridParams hse() { return xc::HybridParams{true, 0.25, 0.11}; }

/// Independent reference for the exchange energy via the density matrix:
/// E_X = -(alpha/4) Int |P(r,r')|^2 K(r-r') dr dr' on the wavefunction grid.
double exchange_energy_reference(const ham::PlanewaveSetup& setup, const CMatrix& psi,
                                 std::span<const double> occ, double alpha, double omega) {
  const std::size_t nw = setup.n_wfc();
  const auto dims = setup.wfc_grid.dims();
  fft::Fft3D fft(dims);

  // Real-space orbitals including the 1/sqrt(Omega) normalization.
  CMatrix pr(nw, psi.cols());
  for (std::size_t j = 0; j < psi.cols(); ++j) {
    grid::GSphere::scatter({psi.col(j), setup.n_g()}, setup.map_wfc(), {pr.col(j), nw});
    fft.inverse(pr.col(j));
    linalg::scal(Complex{1.0 / std::sqrt(setup.volume()), 0.0}, {pr.col(j), nw});
  }

  // Real-space kernel K(r) = (1/Omega) sum_G K(G) e^{iG.r} on the grid.
  std::vector<Complex> kr(nw);
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z) {
    const int f2 = setup.wfc_grid.freq(z, 2);
    for (std::size_t y = 0; y < dims[1]; ++y) {
      const int f1 = setup.wfc_grid.freq(y, 1);
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const auto g =
            setup.crystal.lattice().gvector(setup.wfc_grid.freq(x, 0), f1, f2);
        kr[idx] = Complex{xc::exchange_kernel(grid::norm2(g), omega), 0.0};
      }
    }
  }
  fft.inverse(kr.data());
  for (auto& v : kr) v /= setup.volume();

  // Density matrix P(r,r') = sum_i f_i psi_i(r) conj(psi_i(r')).
  const double w = setup.volume() / static_cast<double>(nw);
  double e = 0.0;
  auto wrap_delta = [&](std::size_t a, std::size_t b) {
    // Grid index of (r_a - r_b) with periodic wrap, per axis.
    const std::size_t ax = a % dims[0], ay = (a / dims[0]) % dims[1], az = a / (dims[0] * dims[1]);
    const std::size_t bx = b % dims[0], by = (b / dims[0]) % dims[1], bz = b / (dims[0] * dims[1]);
    const std::size_t dx = (ax + dims[0] - bx) % dims[0];
    const std::size_t dy = (ay + dims[1] - by) % dims[1];
    const std::size_t dz = (az + dims[2] - bz) % dims[2];
    return dx + dims[0] * (dy + dims[1] * dz);
  };
  for (std::size_t a = 0; a < nw; ++a) {
    for (std::size_t b = 0; b < nw; ++b) {
      Complex p{0, 0};
      for (std::size_t i = 0; i < psi.cols(); ++i)
        p += occ[i] * pr(a, i) * std::conj(pr(b, i));
      e += std::norm(p) * kr[wrap_delta(a, b)].real();
    }
  }
  return -alpha / 4.0 * e * w * w;
}

TEST(Fock, ExchangeEnergyMatchesDensityMatrixReference) {
  // Tiny grid (Ecut 2.5 -> 8^3 points) keeps the O(N^2) reference feasible.
  auto setup = test::make_si8_setup(2.5, 1);
  ASSERT_LE(setup.n_wfc(), 1000u);
  auto psi = test::random_orthonormal(setup, 4, 3);
  std::vector<double> occ(4, 2.0);

  ham::FockOperator fock(setup, hse());
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  fock.set_orbitals(psi, occ, bands, comm);
  const double e_op = fock.exchange_energy(psi, occ, comm);
  const double e_ref = exchange_energy_reference(setup, psi, occ, 0.25, 0.11);
  EXPECT_NEAR(e_op, e_ref, 1e-8 * std::abs(e_ref));
  EXPECT_LT(e_op, 0.0);
}

TEST(Fock, OperatorIsHermitian) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto phi = test::random_orthonormal(setup, 6, 5);
  auto x = test::random_orthonormal(setup, 3, 7);
  std::vector<double> occ(6, 2.0);
  ham::FockOperator fock(setup, hse());
  par::SerialComm comm;
  fock.set_orbitals(phi, occ, par::BlockPartition(6, 1), comm);

  CMatrix vx(setup.n_g(), 3, Complex{0, 0});
  fock.apply_add(x, vx, comm);
  CMatrix m = linalg::overlap(x, vx);  // <x_a | VX x_b>
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = 0; b < 3; ++b)
      EXPECT_NEAR(std::abs(m(a, b) - std::conj(m(b, a))), 0.0, 1e-10);
}

TEST(Fock, EnergyScalesLinearlyInAlpha) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 9);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);

  ham::FockOperator f1(setup, xc::HybridParams{true, 0.25, 0.11});
  ham::FockOperator f2(setup, xc::HybridParams{true, 0.50, 0.11});
  f1.set_orbitals(psi, occ, bands, comm);
  f2.set_orbitals(psi, occ, bands, comm);
  const double e1 = f1.exchange_energy(psi, occ, comm);
  const double e2 = f2.exchange_energy(psi, occ, comm);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-10 * std::abs(e1));
}

TEST(Fock, ScreeningWeakensExchangeMonotonically) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 4, 11);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);
  double prev = 0.0;
  bool first = true;
  for (double omega : {0.05, 0.11, 0.3, 1.0}) {
    ham::FockOperator f(setup, xc::HybridParams{true, 0.25, omega});
    f.set_orbitals(psi, occ, bands, comm);
    const double e = f.exchange_energy(psi, occ, comm);
    EXPECT_LT(e, 0.0);
    if (!first) {
      EXPECT_GT(std::abs(prev), std::abs(e));  // larger omega => weaker exchange
    }
    prev = e;
    first = false;
  }
}

TEST(Fock, BatchedMatchesBandByBand) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto phi = test::random_orthonormal(setup, 6, 13);
  auto x = test::random_orthonormal(setup, 5, 15);
  std::vector<double> occ(6, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(6, 1);

  ham::FockOptions batched;
  batched.batched = true;
  batched.batch_size = 3;
  ham::FockOptions serial_opt;
  serial_opt.batched = false;

  ham::FockOperator fb(setup, hse(), batched);
  ham::FockOperator fs(setup, hse(), serial_opt);
  fb.set_orbitals(phi, occ, bands, comm);
  fs.set_orbitals(phi, occ, bands, comm);
  CMatrix yb(setup.n_g(), 5, Complex{0, 0}), ys(setup.n_g(), 5, Complex{0, 0});
  fb.apply_add(x, yb, comm);
  fs.apply_add(x, ys, comm);
  EXPECT_LT(test::max_abs_diff(yb, ys), 1e-13);
}

TEST(Fock, OverlapOptionIsNumericallyIdentical) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 17);
  auto x = test::random_orthonormal(setup, 4, 19);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  par::BlockPartition bands(4, 1);

  ham::FockOptions with_overlap;
  with_overlap.overlap = true;
  ham::FockOperator fo(setup, hse(), with_overlap);
  ham::FockOperator fn(setup, hse());
  fo.set_orbitals(phi, occ, bands, comm);
  fn.set_orbitals(phi, occ, bands, comm);
  CMatrix yo(setup.n_g(), 4, Complex{0, 0}), yn(setup.n_g(), 4, Complex{0, 0});
  fo.apply_add(x, yo, comm);
  fn.apply_add(x, yn, comm);
  EXPECT_LT(test::max_abs_diff(yo, yn), 1e-14);
}

TEST(Fock, ZeroOccupationOrbitalsDoNotContribute) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto phi = test::random_orthonormal(setup, 6, 21);
  auto x = test::random_orthonormal(setup, 2, 23);
  par::SerialComm comm;
  par::BlockPartition b6(6, 1), b4(4, 1);

  std::vector<double> occ6(6, 2.0);
  occ6[4] = 0.0;
  occ6[5] = 0.0;
  ham::FockOperator f6(setup, hse());
  f6.set_orbitals(phi, occ6, b6, comm);

  CMatrix phi4(setup.n_g(), 4);
  for (std::size_t j = 0; j < 4; ++j)
    std::copy_n(phi.col(j), setup.n_g(), phi4.col(j));
  std::vector<double> occ4(4, 2.0);
  ham::FockOperator f4(setup, hse());
  f4.set_orbitals(phi4, occ4, b4, comm);

  CMatrix y6(setup.n_g(), 2, Complex{0, 0}), y4(setup.n_g(), 2, Complex{0, 0});
  f6.apply_add(x, y6, comm);
  f4.apply_add(x, y4, comm);
  EXPECT_LT(test::max_abs_diff(y6, y4), 1e-13);
}

TEST(Fock, PairSolveCounterTracksWork) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto phi = test::random_orthonormal(setup, 4, 25);
  std::vector<double> occ(4, 2.0);
  par::SerialComm comm;
  ham::FockOperator f(setup, hse());
  f.set_orbitals(phi, occ, par::BlockPartition(4, 1), comm);
  CMatrix y(setup.n_g(), 4, Complex{0, 0});
  f.apply_add(phi, y, comm);
  // Ne x Ne pair solves and Ne broadcasts per application (Alg. 2).
  EXPECT_EQ(f.pair_solves(), 16u);
  EXPECT_EQ(f.broadcasts(), 4u);
}

TEST(Fock, RequiresOrbitalsBeforeApply) {
  auto setup = test::make_si8_setup(4.0, 1);
  ham::FockOperator f(setup, hse());
  CMatrix x(setup.n_g(), 1), y(setup.n_g(), 1);
  par::SerialComm comm;
  EXPECT_THROW(f.apply_add(x, y, comm), Error);
}

}  // namespace
}  // namespace pwdft
