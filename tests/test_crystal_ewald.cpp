#include <gtest/gtest.h>

#include "crystal/crystal.hpp"
#include "crystal/ewald.hpp"

namespace pwdft {
namespace {

using crystal::Crystal;
using crystal::ewald_energy;
using crystal::EwaldOptions;

TEST(Crystal, SiliconSupercellCounts) {
  const auto c1 = Crystal::silicon_supercell(1, 1, 1);
  EXPECT_EQ(c1.n_atoms(), 8u);
  EXPECT_DOUBLE_EQ(c1.n_electrons(), 32.0);
  EXPECT_EQ(c1.n_occupied_bands(), 16u);

  // The paper's largest system: 4x6x8 cells, 1536 atoms, 3072 bands.
  const auto big = Crystal::silicon_supercell(4, 6, 8);
  EXPECT_EQ(big.n_atoms(), 1536u);
  EXPECT_EQ(big.n_occupied_bands(), 3072u);

  // The paper's smallest system has 48 atoms = 6 cells. (The paper text
  // says "1x1x3 ... unit cells", which gives 24 atoms with 8-atom cells;
  // 48 atoms corresponds to 1x2x3 cells — we follow the atom counts, which
  // the evaluation section uses consistently.)
  EXPECT_EQ(Crystal::silicon_supercell(1, 1, 3).n_atoms(), 24u);
  EXPECT_EQ(Crystal::silicon_supercell(1, 2, 3).n_atoms(), 48u);
}

TEST(Crystal, FractionalCoordinatesInUnitCell) {
  const auto c = Crystal::silicon_supercell(2, 1, 1);
  for (const auto& at : c.atoms()) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(at.frac[d], 0.0);
      EXPECT_LT(at.frac[d], 1.0);
    }
  }
}

TEST(Crystal, LatticeConstantMatchesPaper) {
  const auto c = Crystal::silicon_supercell(1, 1, 1);
  EXPECT_NEAR(c.lattice().vectors()[0][0], 5.43 * constants::bohr_per_angstrom, 1e-10);
}

TEST(Crystal, NearestNeighborDistanceIsDiamondBond) {
  const auto c = Crystal::silicon_supercell(1, 1, 1);
  // Diamond bond length = a*sqrt(3)/4.
  const double a = c.lattice().vectors()[0][0];
  double dmin = 1e9;
  for (std::size_t i = 1; i < c.n_atoms(); ++i) {
    auto r = grid::sub(c.position(i), c.position(0));
    dmin = std::min(dmin, std::sqrt(grid::norm2(r)));
  }
  EXPECT_NEAR(dmin, a * std::sqrt(3.0) / 4.0, 1e-9);
}

TEST(Ewald, IndependentOfSplittingParameter) {
  const auto c = Crystal::silicon_supercell(1, 1, 1);
  EwaldOptions o1, o2;
  o1.eta = 0.15;
  o2.eta = 0.6;
  const double e1 = ewald_energy(c, o1);
  const double e2 = ewald_energy(c, o2);
  EXPECT_NEAR(e1, e2, 1e-7 * std::abs(e1));
}

TEST(Ewald, TranslationInvariant) {
  const auto c = Crystal::silicon_supercell(1, 1, 1);
  const auto shifted = c.translated({0.13, 0.27, 0.41});
  EXPECT_NEAR(ewald_energy(c), ewald_energy(shifted), 1e-8 * std::abs(ewald_energy(c)));
}

TEST(Ewald, ExtensiveAcrossSupercells) {
  const auto c1 = Crystal::silicon_supercell(1, 1, 1);
  const auto c2 = Crystal::silicon_supercell(1, 1, 2);
  EXPECT_NEAR(ewald_energy(c2), 2.0 * ewald_energy(c1), 1e-7 * std::abs(ewald_energy(c2)));
}

TEST(Ewald, ReproducesNaClMadelungConstant) {
  // Rock salt with unit charges +-1 at spacing d=1: energy per ion pair is
  // -alpha_Madelung / d with alpha = 1.7475645946.
  const grid::Lattice lat = grid::Lattice::cubic(2.0);
  std::vector<crystal::SpeciesInfo> species{{"Na", 1.0}, {"Cl", -1.0}};
  std::vector<crystal::Atom> atoms;
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x)
        atoms.push_back(crystal::Atom{(x + y + z) % 2, {x * 0.5, y * 0.5, z * 0.5}});
  const Crystal nacl(lat, species, atoms);
  const double e = ewald_energy(nacl);
  const double per_pair = e / 4.0;  // 8 ions = 4 pairs
  EXPECT_NEAR(per_pair, -1.7475645946, 1e-6);
}

TEST(Ewald, SiliconValueIsNegativeAndExtensivePerAtom) {
  const auto c = Crystal::silicon_supercell(1, 1, 1);
  const double e = ewald_energy(c);
  EXPECT_LT(e, 0.0);
  // Per-atom Ewald for diamond Si with Z=4 is around -4 Ha; sanity band.
  EXPECT_GT(e / 8.0, -6.0);
  EXPECT_LT(e / 8.0, -2.0);
}

TEST(Crystal, TranslatedWrapsIntoCell) {
  const auto c = Crystal::silicon_supercell(1, 1, 1).translated({0.9, 0.9, 0.9});
  for (const auto& at : c.atoms()) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(at.frac[d], 0.0);
      EXPECT_LT(at.frac[d], 1.0);
    }
  }
}

}  // namespace
}  // namespace pwdft
