#pragma once

/// Shared fixtures for the serve-layer tests (test_serve.cpp: the engine
/// in-process; test_server.cpp: the wire protocol and the network server).
/// The tiny silicon cell keeps a full hybrid SCF + PT-CN propagation fast
/// enough for unit tests while exercising the real physics stack, and the
/// expect_*_identical helpers pin BITWISE equality — the serve layer's
/// promise is bit-identical trajectories, not close ones.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "serve/job.hpp"

namespace pwdft::serve_test {

inline core::SimulationOptions tiny_sim(bool hybrid = true) {
  core::SimulationOptions opt;
  opt.cells[0] = opt.cells[1] = opt.cells[2] = 1;
  opt.ecut = 3.0;
  opt.dense_factor = 1;
  opt.hybrid = hybrid;
  opt.scf.max_iter = 40;
  opt.scf.tol_rho = 1e-7;
  opt.scf.lobpcg.max_iter = 6;
  opt.scf.hybrid_outer_max = 5;
  opt.scf.hybrid_outer_tol = 1e-6;
  return opt;
}

inline serve::JobSpec tiny_job(const std::string& name, serve::JobKind kind, int steps) {
  serve::JobSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.sim = tiny_sim();
  spec.steps = steps;
  spec.ptcn.rho_tol = 1e-7;
  return spec;
}

/// Bitwise equality on every physics field (wall_seconds is timing noise).
inline void expect_points_identical(const td::TimePoint& a, const td::TimePoint& b,
                                    const std::string& what) {
  EXPECT_EQ(a.t, b.t) << what;
  for (int d = 0; d < 3; ++d) EXPECT_EQ(a.current[d], b.current[d]) << what << " axis " << d;
  EXPECT_EQ(a.n_excited, b.n_excited) << what;
  EXPECT_EQ(a.energy, b.energy) << what;
  EXPECT_EQ(a.scf_iterations, b.scf_iterations) << what;
  EXPECT_EQ(a.rho_error, b.rho_error) << what;
  EXPECT_EQ(a.exchange_refreshed, b.exchange_refreshed) << what;
  EXPECT_EQ(a.mts_drift, b.mts_drift) << what;
}

inline void expect_traces_identical(const std::vector<td::TimePoint>& a,
                                    const std::vector<td::TimePoint>& b,
                                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_points_identical(a[i], b[i], what + " point " + std::to_string(i));
}

/// Solo reference: the same trajectory run directly through Simulation.
inline std::vector<td::TimePoint> solo_trace(const serve::JobSpec& spec) {
  core::Simulation sim(spec.sim);
  sim.ground_state();
  const auto field = spec.build_field();
  core::PropagateOptions prop;
  prop.dt_as = spec.dt_as;
  prop.steps = spec.steps;
  prop.field = field.get();
  prop.ptcn = spec.ptcn;
  return sim.propagate(prop);
}

/// Scratch checkpoint directory, wiped on both ends of the test.
struct CkptDir {
  explicit CkptDir(const char* name) : path(std::string("/tmp/pwdft_serve_") + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~CkptDir() { std::filesystem::remove_all(path); }
  std::string path;
};

}  // namespace pwdft::serve_test
