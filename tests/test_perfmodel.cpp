#include <gtest/gtest.h>

#include "perf/machine.hpp"
#include "perf/model.hpp"
#include "perf/report.hpp"
#include "perf/workload.hpp"

namespace pwdft {
namespace {

using perf::SummitMachine;
using perf::SummitModel;
using perf::Workload;

SummitModel paper_model() {
  return SummitModel(SummitMachine::defaults(), Workload::silicon(1536));
}

TEST(Machine, PerRankNicBandwidthMatchesMeasurement) {
  // Paper §7: "the MPI communication speed is 15.36GB/7s = 2.2 GB/s".
  const SummitMachine m = SummitMachine::defaults();
  EXPECT_NEAR(m.nic_rank_bw(), 2.2e9, 0.05e9);
}

TEST(Workload, SiliconSizesMatchPaperSection4) {
  const Workload w = Workload::silicon(1536);
  EXPECT_EQ(w.ne, 3072u);                    // 3072 occupied wavefunctions
  EXPECT_NEAR(w.ng, 648000.0, 1.0);          // 60x90x120
  EXPECT_NEAR(w.ndense, 5184000.0, 1.0);     // 120x180x240
  // One wavefunction on the wire: 5.0 MB single precision (paper §7).
  EXPECT_NEAR(w.wfc_bytes(true), 5.18e6, 0.01e6);
  // Per-rank receive volume per Fock application: 15.36 GB (paper §7,
  // computed there with the rounded 5.0 MB figure).
  EXPECT_NEAR(w.fock_bcast_bytes_per_rank(true), 15.9e9, 0.6e9);
}

TEST(Workload, ScalesAcrossPaperSystems) {
  for (std::size_t n : {48u, 96u, 192u, 384u, 768u, 1536u}) {
    const Workload w = Workload::silicon(n);
    EXPECT_EQ(w.ne, 2 * n);
    EXPECT_NEAR(w.ng / static_cast<double>(n), 421.875, 1e-9);
  }
}

TEST(Model, Table1AnchorsWithinTolerance) {
  const SummitModel m = paper_model();
  // Paper Table 1 anchors (seconds). The model is calibrated at 36 GPUs and
  // must track the full row within generous bands.
  const auto b36 = m.scf_breakdown(36);
  EXPECT_NEAR(b36.fock_comp, 90.99, 0.15 * 90.99);
  EXPECT_NEAR(b36.fock_mpi, 0.71, 0.5 * 0.71);
  EXPECT_NEAR(b36.per_scf(), 101.36, 0.15 * 101.36);
  EXPECT_NEAR(m.ptcn_step_total(36), 2453.8, 0.15 * 2453.8);

  const auto b768 = m.scf_breakdown(768);
  EXPECT_NEAR(b768.fock_comp, 4.38, 0.5 * 4.38);
  EXPECT_NEAR(m.ptcn_step_total(768), 260.9, 0.30 * 260.9);

  EXPECT_NEAR(m.ptcn_step_total(3072), 286.6, 0.35 * 286.6);
}

TEST(Model, ComputeScalesInverselyWithGpus) {
  const SummitModel m = paper_model();
  const double c36 = m.fock_compute_per_apply(36);
  const double c288 = m.fock_compute_per_apply(288);
  EXPECT_NEAR(c36 / c288, 8.0, 0.8);  // ~1/P with a small fixed part
}

TEST(Model, CpuReferenceMatchesPaper) {
  const SummitModel m = paper_model();
  // Paper: 8874 s per PT-CN step with 3072 CPU cores.
  EXPECT_NEAR(m.cpu_step_total(3072), 8874.0, 0.15 * 8874.0);
}

TEST(Model, SpeedupCurveShapeMatchesPaper) {
  const SummitModel m = paper_model();
  const double cpu = m.cpu_step_total(3072);
  // Paper: 3.6x at 36 GPUs rising to ~34x at 768, then saturating.
  const double s36 = cpu / m.ptcn_step_total(36);
  const double s768 = cpu / m.ptcn_step_total(768);
  const double s3072 = cpu / m.ptcn_step_total(3072);
  EXPECT_GT(s36, 2.5);
  EXPECT_LT(s36, 5.0);
  EXPECT_GT(s768, 25.0);
  EXPECT_LT(s768, 45.0);
  // Saturation: going 768 -> 3072 does not help.
  EXPECT_LT(s3072, s768 * 1.1);
}

TEST(Model, StrongScalingStopsNear768Gpus) {
  // Paper §6: "After 768 GPUs, the MPI communication dominates ... which
  // prevents the code to scale".
  const SummitModel m = paper_model();
  EXPECT_LT(m.ptcn_step_total(768), m.ptcn_step_total(384));
  EXPECT_GT(m.ptcn_step_total(3072), m.ptcn_step_total(768) * 0.9);
}

TEST(Model, HpsiDominatesPerScfTime) {
  // Paper Table 1: HPsi is 74-90% of the per-SCF time.
  const SummitModel m = paper_model();
  for (int g : perf::paper_gpu_counts()) {
    const auto b = m.scf_breakdown(g);
    const double frac = b.hpsi_total() / b.per_scf();
    EXPECT_GT(frac, 0.60) << g;
    EXPECT_LT(frac, 0.95) << g;
  }
}

TEST(Model, OthersShareGrowsWithGpuCount) {
  // Paper: "others" is 2.6% of an SCF at 36 GPUs and ~15% at 768.
  const SummitModel m = paper_model();
  const auto b36 = m.scf_breakdown(36);
  const auto b768 = m.scf_breakdown(768);
  EXPECT_LT(b36.others / b36.per_scf(), 0.05);
  EXPECT_GT(b768.others / b768.per_scf(), 0.10);
}

TEST(Model, BcastGrowsAndDominatesCommAtScale) {
  const SummitModel m = paper_model();
  double prev = 0.0;
  for (int g : perf::paper_gpu_counts()) {
    const auto c = m.comm_breakdown(g);
    EXPECT_GE(c.bcast, prev * 0.95) << g;  // monotone growth (some slack)
    prev = c.bcast;
  }
  const auto c768 = m.comm_breakdown(768);
  EXPECT_GT(c768.bcast, c768.alltoallv);
  EXPECT_GT(c768.bcast, c768.allgatherv);
}

TEST(Model, Table2AnchorsWithinTolerance) {
  const SummitModel m = paper_model();
  const auto c36 = m.comm_breakdown(36);
  EXPECT_NEAR(c36.bcast, 18.78, 0.5 * 18.78);
  EXPECT_NEAR(c36.alltoallv, 20.97, 0.5 * 20.97);
  EXPECT_NEAR(c36.memcpy, 60.80, 0.4 * 60.80);
  EXPECT_NEAR(c36.compute, 2341.4, 0.2 * 2341.4);
  const auto c3072 = m.comm_breakdown(3072);
  EXPECT_NEAR(c3072.bcast, 193.89, 0.5 * 193.89);
  EXPECT_NEAR(c3072.memcpy, 2.24, 1.5);
}

TEST(Model, AllreduceIsRoughlyFlat) {
  // Ring allreduce volume is independent of P (paper Table 2: 11.5-21.3 s).
  const SummitModel m = paper_model();
  const double a36 = m.comm_breakdown(36).allreduce;
  const double a3072 = m.comm_breakdown(3072).allreduce;
  EXPECT_LT(std::max(a36, a3072) / std::min(a36, a3072), 2.0);
}

TEST(Model, Rk4VsPtcnSpeedupInPaperRange) {
  // Paper Fig. 6: PT-CN is ~20x faster at 36 GPUs, ~30x at 768.
  const SummitModel m = paper_model();
  const double r36 = m.rk4_50as_total(36) / m.ptcn_step_total(36);
  const double r768 = m.rk4_50as_total(768) / m.ptcn_step_total(768);
  EXPECT_GT(r36, 10.0);
  EXPECT_LT(r36, 35.0);
  EXPECT_GT(r768, 15.0);
  EXPECT_LT(r768, 45.0);
  EXPECT_GT(r768, r36);  // the speedup grows with GPU count (paper §6)
}

TEST(Model, Rk4At36GpusMatchesFig6Magnitude) {
  // Fig. 6 shows ~40000 s for RK4 at 36 GPUs.
  const SummitModel m = paper_model();
  EXPECT_NEAR(m.rk4_50as_total(36), 40000.0, 0.35 * 40000.0);
}

TEST(Model, WeakScalingCloseToIdealButBetterForSmallSystems) {
  // Paper Fig. 8: ideal is O(N^2) anchored at the large end; small systems
  // run *above* that line (growth from small to large is slower than N^2).
  const SummitMachine mach = SummitMachine::defaults();
  SummitModel m192(mach, Workload::silicon(192));
  SummitModel m1536(mach, Workload::silicon(1536));
  const double t192 = m192.ptcn_step_total(96);
  const double t1536 = m1536.ptcn_step_total(768);
  const double growth = t1536 / t192;
  const double ideal = 64.0;  // (1536/192)^2
  EXPECT_LT(growth, ideal);
  EXPECT_GT(growth, 5.0);
  // Paper quotes ~16 s for 192 atoms on 96 GPUs.
  EXPECT_NEAR(t192, 16.0, 0.6 * 16.0);
}

TEST(Model, TotalFlopMatchesNvprofCount) {
  // Paper §7: 3.87e16 FLOP per TDDFT step, 93% from the Fock operator.
  const SummitModel m = paper_model();
  const double flop = m.total_flop_per_step();
  EXPECT_NEAR(flop, 3.87e16, 0.2 * 3.87e16);
}

TEST(Model, PowerComparisonMatchesSection6) {
  const SummitModel m = paper_model();
  // 73 CPU nodes x 380 W = 27740 W; 12 GPU nodes x 2180 W = 26160 W.
  EXPECT_EQ(m.cpu_nodes(3072), 73);
  EXPECT_NEAR(m.cpu_power_w(3072), 27740.0, 1.0);
  EXPECT_NEAR(m.gpu_power_w(72), 26160.0, 1.0);
  // At iso-power the GPU version is ~7x faster (paper §6).
  const double speedup = m.cpu_step_total(3072) / m.ptcn_step_total(72);
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 10.0);
}

TEST(Model, AndersonMemoryFitsSummitNode) {
  // Paper §7: < 20 GB per MPI rank at 36 GPUs, fits the 512 GB node.
  const SummitModel m = paper_model();
  const double gb = m.anderson_memory_gb_per_rank(36);
  EXPECT_GT(gb, 10.0);
  EXPECT_LT(gb, 32.0);
  const double node_gb = gb * 6.0;
  EXPECT_LT(node_gb, 512.0);
}

TEST(Model, Fig3StagesDecreaseMonotonically) {
  const SummitModel m = paper_model();
  const auto stages = m.fock_stages(72, 3072);
  ASSERT_EQ(stages.size(), 6u);
  for (std::size_t i = 1; i < stages.size(); ++i)
    EXPECT_LE(stages[i].seconds, stages[i - 1].seconds * 1.001) << stages[i].name;
  // Final GPU vs CPU: ~7x (paper §3.2 / Fig. 3).
  const double ratio = stages.front().seconds / stages.back().seconds;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(Report, TablesHaveExpectedShape) {
  const SummitModel m = paper_model();
  const auto gpus = perf::paper_gpu_counts();
  EXPECT_EQ(perf::table1(m, gpus).header().size(), gpus.size() + 1);
  EXPECT_EQ(perf::table2(m, gpus).num_rows(), 7u);
  EXPECT_EQ(perf::fig6(m, {36, 72}).num_rows(), 2u);
  EXPECT_EQ(perf::fig8(SummitMachine::defaults(), {48, 96, 192}).num_rows(), 3u);
  EXPECT_GE(perf::fig3(m).num_rows(), 6u);
}

TEST(Model, CommBreakdownSumsToTotal) {
  const SummitModel m = paper_model();
  for (int g : {36, 768}) {
    const auto c = m.comm_breakdown(g);
    EXPECT_NEAR(c.compute + c.mpi_total() + c.memcpy, m.ptcn_step_total(g),
                1e-6 * m.ptcn_step_total(g));
  }
}

}  // namespace
}  // namespace pwdft
