/// \file test_socket_comm.cpp
/// Cross-backend Comm conformance sweep (Serial / Thread / Socket) plus
/// socket-specific fault injection: every collective must be bit-identical
/// across backends, and every injected failure (peer death, truncation,
/// corruption, connect timeout) must surface as a typed CommError within
/// the configured timeout — never as a hang.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm_conformance.hpp"
#include "common/timer.hpp"
#include "parallel/socket_comm.hpp"

namespace pwdft {
namespace {

using par::CommError;
using par::CommFault;
using par::SocketComm;
using par::SocketCommOptions;
using par::SocketGroup;
using test::CommBackend;

// --- conformance sweep ------------------------------------------------------

struct SweepCase {
  CommBackend backend;
  int np;
};

class CommConformance : public ::testing::TestWithParam<SweepCase> {};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(test::backend_name(info.param.backend)) + "_np" +
         std::to_string(info.param.np);
}

TEST_P(CommConformance, AllCollectivesBitwise) {
  const SweepCase p = GetParam();
  test::run_backend(p.backend, p.np, [](par::Comm& c) { test::check_all_collectives(c); });
}

TEST_P(CommConformance, HierLayoutsBitwise) {
  const SweepCase p = GetParam();
  test::run_backend(p.backend, p.np, [](par::Comm& c) {
    for (int bg = 1; bg <= c.size(); ++bg)
      if (c.size() % bg == 0) test::check_hier_allreduce(c, bg);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, CommConformance,
                         ::testing::Values(SweepCase{CommBackend::kSerial, 1},
                                           SweepCase{CommBackend::kThread, 1},
                                           SweepCase{CommBackend::kThread, 2},
                                           SweepCase{CommBackend::kThread, 3},
                                           SweepCase{CommBackend::kThread, 4},
                                           SweepCase{CommBackend::kSocket, 1},
                                           SweepCase{CommBackend::kSocket, 2},
                                           SweepCase{CommBackend::kSocket, 3},
                                           SweepCase{CommBackend::kSocket, 4}),
                         sweep_name);

// --- dup()/split() under concurrent collectives (ThreadComm + SocketComm) ---

TEST(CommConcurrency, ThreadDupStreamsStayIndependent) {
  for (int np : {2, 4})
    test::run_backend(CommBackend::kThread, np,
                      [](par::Comm& c) { test::check_concurrent_dup_collectives(c); });
}

TEST(CommConcurrency, ThreadSplitStreamsStayIndependent) {
  test::run_backend(CommBackend::kThread, 4, [](par::Comm& c) {
    // Side thread drives collectives on my split half while the main
    // thread keeps the world communicator busy.
    const std::unique_ptr<par::Comm> sub = c.split(c.rank() % 2, c.rank());
    std::vector<int> members;
    for (int r = 0; r < c.size(); ++r)
      if (r % 2 == c.rank() % 2) members.push_back(r);
    std::vector<double> got(8);
    std::thread side([&] {
      for (int k = 0; k < 8; ++k) {
        double v = test::signal(members[sub->rank()], 300 + k);
        sub->allreduce_sum(&v, 1);
        got[k] = v;
      }
    });
    for (int k = 0; k < 8; ++k) {
      double v = test::signal(c.rank(), 400 + k);
      c.allreduce_sum(&v, 1);
      double expect = 0;
      for (int r = 0; r < c.size(); ++r) expect += test::signal(r, 400 + k);
      PWDFT_EXPECT_BITEQ(v, expect);
    }
    side.join();
    for (int k = 0; k < 8; ++k) {
      double expect = 0;
      for (int r : members) expect += test::signal(r, 300 + k);
      PWDFT_EXPECT_BITEQ(got[k], expect);
    }
  });
}

TEST(CommConcurrency, SocketDupStreamsStayIndependent) {
  test::run_backend(CommBackend::kSocket, 2,
                    [](par::Comm& c) { test::check_concurrent_dup_collectives(c, 8); });
}

// --- socket-specific semantics ----------------------------------------------

TEST(SocketComm, OutOfOrderTagsAreParked) {
  test::run_backend(CommBackend::kSocket, 2,
                    [](par::Comm& c) { test::check_p2p_out_of_order(c); });
}

TEST(SocketComm, SingleRankTrivialComm) {
  const auto c = SocketComm::connect(0, 1, "unix:/tmp/unused_rv", SocketCommOptions{});
  EXPECT_EQ(c->rank(), 0);
  EXPECT_EQ(c->size(), 1);
  test::check_all_collectives(*c);
}

TEST(SocketComm, ConnectEnvSingleRank) {
  ::setenv("PWDFT_RANKS", "1", 1);
  ::setenv("PWDFT_RANK", "0", 1);
  ::unsetenv("PWDFT_COMM_LISTEN");
  const auto c = SocketComm::connect_env();
  EXPECT_EQ(c->size(), 1);
  ::unsetenv("PWDFT_RANKS");
  ::unsetenv("PWDFT_RANK");
}

TEST(SocketComm, TcpLoopbackRendezvous) {
  // Forked ranks over a TCP loopback rendezvous (mesh follows the
  // transport) — exercises the PWDFT_COMM_LISTEN path used by
  // independently launched ranks.
  SocketGroup::run(2, [](par::Comm& c) { test::check_allreduce_double(c); });
  std::vector<std::thread> ranks;
  std::vector<std::string> errors(2);
  const std::string rv = "tcp:127.0.0.1:39417";
  for (int r = 0; r < 2; ++r)
    ranks.emplace_back([r, &rv, &errors] {
      try {
        const auto c = SocketComm::connect(r, 2, rv, SocketCommOptions{});
        test::check_allreduce_double(*c);
      } catch (const std::exception& e) {
        errors[r] = e.what();
      }
    });
  for (auto& t : ranks) t.join();
  EXPECT_EQ(errors[0], "");
  EXPECT_EQ(errors[1], "");
}

// --- fault injection ---------------------------------------------------------
// Every failure must be a typed CommError within the timeout. The exit-code
// convention of SocketGroup::run_collect (4 = CommError escaped) proves
// typedness across the process boundary; the WallTimer bound proves no hang.

TEST(SocketFaults, RendezvousAcceptTimesOut) {
  SocketCommOptions opts;
  opts.timeout_ms = 300;
  WallTimer t;
  try {
    SocketComm::connect(0, 2, "unix:/tmp/pwdft_rv_nobody_joins", opts);
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.fault(), CommFault::kTimeout) << e.what();
  }
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(SocketFaults, DialToNowhereTimesOut) {
  SocketCommOptions opts;
  opts.timeout_ms = 300;
  WallTimer t;
  try {
    SocketComm::connect(1, 2, "unix:/tmp/pwdft_no_such_rv_zz", opts);
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.fault(), CommFault::kConnect) << e.what();
  }
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(SocketFaults, PeerDeathMidCollectiveIsTyped) {
  WallTimer t;
  const auto exits = SocketGroup::run_collect(
      2,
      [](par::Comm& c) {
        c.barrier();  // mesh complete on both sides before the death
        if (c.rank() == 1) std::_Exit(9);
        double v = 1.0;
        c.allreduce_sum(&v, 1);  // survivor must get a typed error, not hang
      },
      /*timeout_sec=*/30);
  EXPECT_FALSE(exits[0].timed_out);
  EXPECT_FALSE(exits[0].signaled);
  EXPECT_EQ(exits[0].code, 4) << "rank 0 should die on a CommError";
  EXPECT_EQ(exits[1].code, 9);
  EXPECT_LT(t.seconds(), 30.0);
}

TEST(SocketFaults, BitFlippedFrameIsTyped) {
  WallTimer t;
  const auto exits = SocketGroup::run_collect(
      2,
      [](par::Comm& c) {
        auto* sc = dynamic_cast<SocketComm*>(&c);
        ASSERT_NE(sc, nullptr);
        if (c.rank() == 1) sc->debug_inject_fault(SocketComm::Inject::kFlipPayloadByte);
        double v = 1.0;
        c.allreduce_sum(&v, 1);
      },
      /*timeout_sec=*/60);
  // Rank 0 sees the checksum mismatch; rank 1, waiting for the result from
  // a peer that just died on it, gets a typed error too.
  EXPECT_FALSE(exits[0].timed_out);
  EXPECT_FALSE(exits[1].timed_out);
  EXPECT_EQ(exits[0].code, 4);
  EXPECT_EQ(exits[1].code, 4);
  EXPECT_LT(t.seconds(), 60.0);
}

TEST(SocketFaults, TruncatedFrameIsTyped) {
  WallTimer t;
  const auto exits = SocketGroup::run_collect(
      2,
      [](par::Comm& c) {
        auto* sc = dynamic_cast<SocketComm*>(&c);
        ASSERT_NE(sc, nullptr);
        if (c.rank() == 1) sc->debug_inject_fault(SocketComm::Inject::kTruncateFrame);
        double v = 1.0;
        c.allreduce_sum(&v, 1);
      },
      /*timeout_sec=*/60);
  EXPECT_FALSE(exits[0].timed_out);
  EXPECT_FALSE(exits[1].timed_out);
  EXPECT_EQ(exits[0].code, 4);
  EXPECT_EQ(exits[1].code, 4);
  EXPECT_LT(t.seconds(), 60.0);
}

TEST(SocketFaults, WedgedPeerIsATimeoutNotAHang) {
  // A rank that never shows up for a collective: the survivor times out
  // with a typed error well before the group deadline, and the deadline
  // reaps the wedged rank itself.
  ::setenv("PWDFT_COMM_TIMEOUT_MS", "1500", 1);
  const auto exits = SocketGroup::run_collect(
      2,
      [](par::Comm& c) {
        if (c.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::seconds(3600));  // wedged
        }
        double v = 1.0;
        c.allreduce_sum(&v, 1);
      },
      /*timeout_sec=*/6);
  ::unsetenv("PWDFT_COMM_TIMEOUT_MS");
  EXPECT_FALSE(exits[0].timed_out);
  EXPECT_EQ(exits[0].code, 4) << "survivor should see CommError{kTimeout}";
  EXPECT_TRUE(exits[1].timed_out);
  EXPECT_TRUE(exits[1].signaled);
}

}  // namespace
}  // namespace pwdft
