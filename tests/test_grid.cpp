#include <gtest/gtest.h>

#include "common/random.hpp"
#include "grid/fftgrid.hpp"
#include "grid/gsphere.hpp"
#include "grid/lattice.hpp"

namespace pwdft {
namespace {

using grid::FftGrid;
using grid::GSphere;
using grid::Lattice;

TEST(Lattice, VolumeAndReciprocalDuality) {
  const Lattice lat = Lattice::orthorhombic(2.0, 3.0, 5.0);
  EXPECT_NEAR(lat.volume(), 30.0, 1e-12);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(grid::dot(lat.recip()[i], lat.vectors()[j]),
                  (i == j) ? constants::two_pi : 0.0, 1e-12);
}

TEST(Lattice, TriclinicReciprocalDuality) {
  const Lattice lat(grid::Mat3{grid::Vec3{3.0, 0.1, 0.0}, grid::Vec3{0.2, 2.5, 0.3},
                               grid::Vec3{0.0, 0.4, 4.0}});
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(grid::dot(lat.recip()[i], lat.vectors()[j]),
                  (i == j) ? constants::two_pi : 0.0, 1e-10);
}

TEST(Lattice, FractionalCartesianRoundTrip) {
  const Lattice lat = Lattice::orthorhombic(4.0, 6.0, 9.0);
  const grid::Vec3 f{0.25, 0.6, 0.9};
  const auto c = lat.cartesian(f);
  const auto f2 = lat.fractional(c);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(f2[d], f[d], 1e-12);
}

TEST(FftGrid, GoodSizeIsFiveSmoothAndMinimal) {
  EXPECT_EQ(FftGrid::good_size(1), 1u);
  EXPECT_EQ(FftGrid::good_size(7), 8u);
  EXPECT_EQ(FftGrid::good_size(11), 12u);
  EXPECT_EQ(FftGrid::good_size(13), 15u);
  EXPECT_EQ(FftGrid::good_size(15), 15u);
  EXPECT_EQ(FftGrid::good_size(31), 32u);
  EXPECT_EQ(FftGrid::good_size(121), 125u);
}

TEST(FftGrid, PaperGridForSilicon) {
  // Ecut = 10 Ha, a = 5.43 A per 8-atom cell: 15 points per cell edge.
  const double a = 5.43 * constants::bohr_per_angstrom;
  const double gmax = std::sqrt(2.0 * 10.0);
  {
    const auto g = FftGrid::for_gmax(Lattice::cubic(a), gmax);
    EXPECT_EQ(g.dims()[0], 15u);
    EXPECT_EQ(g.dims()[1], 15u);
    EXPECT_EQ(g.dims()[2], 15u);
  }
  {
    // The paper's 1536-atom system: 4x6x8 cells -> 60x90x120 = 648000.
    const auto g = FftGrid::for_gmax(Lattice::orthorhombic(4 * a, 6 * a, 8 * a), gmax);
    EXPECT_EQ(g.dims()[0], 60u);
    EXPECT_EQ(g.dims()[1], 90u);
    EXPECT_EQ(g.dims()[2], 120u);
    EXPECT_EQ(g.size(), 648000u);
    // Density grid doubles each dimension: 120x180x240 (paper §4).
    const auto d = g.refined(2);
    EXPECT_EQ(d.size(), 5184000u);
  }
}

TEST(FftGrid, FreqIndexRoundTrip) {
  const FftGrid g({8, 9, 5});
  for (int ax = 0; ax < 3; ++ax) {
    const int n = static_cast<int>(g.dims()[ax]);
    for (std::size_t i = 0; i < g.dims()[ax]; ++i) {
      const int f = g.freq(i, ax);
      EXPECT_GE(f, -(n / 2));
      EXPECT_LE(f, (n - 1) / 2);
    }
  }
  EXPECT_EQ(g.index_of(0, 0, 0), 0u);
  EXPECT_EQ(g.index_of(-1, 0, 0), 7u);
  EXPECT_EQ(g.index_of(1, -1, 2), 1u + 8u * (8u + 9u * 2u));
}

TEST(GSphere, CountApproximatesSphereVolume) {
  const Lattice lat = Lattice::cubic(10.2612);
  const double ecut = 10.0;
  const auto grid_ = FftGrid::for_gmax(lat, std::sqrt(2.0 * ecut));
  const GSphere s(lat, ecut, grid_);
  const double gmax = std::sqrt(2.0 * ecut);
  const double expect = 4.0 / 3.0 * constants::pi * gmax * gmax * gmax /
                        (std::pow(constants::two_pi, 3) / lat.volume());
  EXPECT_NEAR(static_cast<double>(s.size()), expect, 0.10 * expect);
}

TEST(GSphere, ContainsGZeroAndInversionPairs) {
  const Lattice lat = Lattice::cubic(8.0);
  const auto grid_ = FftGrid::for_gmax(lat, std::sqrt(2.0 * 6.0));
  const GSphere s(lat, 6.0, grid_);
  EXPECT_NEAR(s.g2()[s.g0_index()], 0.0, 1e-14);
  // Every +G has its -G partner (time-reversal symmetry of the basis).
  for (const auto& m : s.miller()) {
    bool found = false;
    for (const auto& m2 : s.miller())
      if (m2[0] == -m[0] && m2[1] == -m[1] && m2[2] == -m[2]) {
        found = true;
        break;
      }
    EXPECT_TRUE(found);
  }
}

TEST(GSphere, AllVectorsWithinCutoff) {
  const Lattice lat = Lattice::orthorhombic(9.0, 7.0, 11.0);
  const double ecut = 5.0;
  const auto grid_ = FftGrid::for_gmax(lat, std::sqrt(2.0 * ecut));
  const GSphere s(lat, ecut, grid_);
  for (double g2 : s.g2()) EXPECT_LE(0.5 * g2, ecut + 1e-9);
}

TEST(GSphere, MapToDenseGridPreservesFrequencies) {
  const Lattice lat = Lattice::cubic(8.0);
  const auto wfc = FftGrid::for_gmax(lat, std::sqrt(2.0 * 5.0));
  const auto dense = wfc.refined(2);
  const GSphere s(lat, 5.0, wfc);
  const auto map_w = s.map_to(wfc);
  const auto map_d = s.map_to(dense);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto& m = s.miller()[i];
    EXPECT_EQ(map_w[i], wfc.index_of(m[0], m[1], m[2]));
    EXPECT_EQ(map_d[i], dense.index_of(m[0], m[1], m[2]));
  }
}

TEST(GSphere, ScatterGatherRoundTrip) {
  const Lattice lat = Lattice::cubic(8.0);
  const auto wfc = FftGrid::for_gmax(lat, std::sqrt(2.0 * 5.0));
  const GSphere s(lat, 5.0, wfc);
  const auto map = s.map_to(wfc);
  Rng rng(3);
  std::vector<Complex> coeffs(s.size()), grid_data(wfc.size()), back(s.size());
  for (auto& c : coeffs) c = rng.complex_normal();
  GSphere::scatter(coeffs, map, grid_data);
  // Everything off the sphere is zero.
  double off_norm = 0.0;
  for (const auto& v : grid_data) off_norm += std::norm(v);
  double on_norm = 0.0;
  for (const auto& c : coeffs) on_norm += std::norm(c);
  EXPECT_NEAR(off_norm, on_norm, 1e-12);
  GSphere::gather(grid_data, map, 2.0, back);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_NEAR(std::abs(back[i] - 2.0 * coeffs[i]), 0.0, 1e-14);
}

TEST(GSphere, ThrowsWithoutPlanewaves) {
  const Lattice lat = Lattice::cubic(1.0);
  const auto g = FftGrid({2, 2, 2});
  EXPECT_NO_THROW(GSphere(lat, 1.0, g));  // G=0 always inside
}

}  // namespace
}  // namespace pwdft
