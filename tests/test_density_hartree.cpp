#include <gtest/gtest.h>

#include "fft/fft3d.hpp"
#include "ham/density.hpp"
#include "ham/hartree.hpp"
#include "parallel/thread_comm.hpp"
#include "test_helpers.hpp"

namespace pwdft {
namespace {

TEST(Density, IntegratesToElectronCount) {
  auto setup = test::make_si8_setup(4.0, 2);
  auto psi = test::random_orthonormal(setup, 16);
  std::vector<double> occ(16, 2.0);
  fft::Fft3D fft(setup.dense_grid.dims());
  par::SerialComm comm;
  auto rho = ham::compute_density(setup, fft, psi, occ, comm);
  EXPECT_NEAR(ham::integrate_dense(setup, rho), 32.0, 1e-9);
}

TEST(Density, NonNegativeEverywhere) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 8);
  std::vector<double> occ(8, 2.0);
  fft::Fft3D fft(setup.dense_grid.dims());
  par::SerialComm comm;
  auto rho = ham::compute_density(setup, fft, psi, occ, comm);
  for (double v : rho) EXPECT_GE(v, -1e-14);
}

TEST(Density, UniformForGZeroOrbital) {
  auto setup = test::make_si8_setup(4.0, 1);
  CMatrix psi(setup.n_g(), 1, Complex{0.0, 0.0});
  psi(setup.sphere.g0_index(), 0) = Complex{1.0, 0.0};
  std::vector<double> occ{2.0};
  fft::Fft3D fft(setup.dense_grid.dims());
  par::SerialComm comm;
  auto rho = ham::compute_density(setup, fft, psi, occ, comm);
  const double expect = 2.0 / setup.volume();
  for (double v : rho) EXPECT_NEAR(v, expect, 1e-12);
}

TEST(Density, RespectsOccupations) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 4);
  std::vector<double> occ{2.0, 2.0, 1.0, 0.0};
  fft::Fft3D fft(setup.dense_grid.dims());
  par::SerialComm comm;
  auto rho = ham::compute_density(setup, fft, psi, occ, comm);
  EXPECT_NEAR(ham::integrate_dense(setup, rho), 5.0, 1e-9);
}

TEST(Density, DistributedMatchesSerial) {
  auto setup = test::make_si8_setup(4.0, 1);
  auto psi = test::random_orthonormal(setup, 12, 23);
  std::vector<double> occ(12, 2.0);
  fft::Fft3D fft(setup.dense_grid.dims());
  par::SerialComm serial;
  auto rho_ref = ham::compute_density(setup, fft, psi, occ, serial);

  for (int np : {2, 3}) {
    par::ThreadGroup::run(np, [&](par::Comm& c) {
      auto local_setup = test::make_si8_setup(4.0, 1);
      fft::Fft3D local_fft(local_setup.dense_grid.dims());
      par::BlockPartition bands(12, np);
      CMatrix psi_loc = test::band_slice(psi, bands, c.rank());
      std::span<const double> occ_loc(occ.data() + bands.offset(c.rank()),
                                      bands.count(c.rank()));
      auto rho = ham::compute_density(local_setup, local_fft, psi_loc, occ_loc, c);
      for (std::size_t i = 0; i < rho.size(); ++i) EXPECT_NEAR(rho[i], rho_ref[i], 1e-11);
    });
  }
}

TEST(Density, ErrorMetricIsRelativePerElectron) {
  auto setup = test::make_si8_setup(4.0, 1);
  std::vector<double> a(setup.n_dense(), 1.0), b(setup.n_dense(), 1.0);
  EXPECT_DOUBLE_EQ(ham::density_error(setup, a, b), 0.0);
  for (auto& v : b) v += 32.0 / setup.volume() * 0.01;  // 1% of the density scale
  EXPECT_NEAR(ham::density_error(setup, a, b), 0.01, 1e-12);
}

TEST(Hartree, SinglePlaneWaveAnalytic) {
  // rho(r) = cos(G.r) => V_H(r) = (4 pi / G^2) cos(G.r).
  auto setup = test::make_si8_setup(4.0, 1);
  const auto dims = setup.dense_grid.dims();
  fft::Fft3D fft(dims);
  const auto& lat = setup.crystal.lattice();
  const grid::Vec3 g = lat.gvector(1, 0, 0);
  std::vector<double> rho(setup.n_dense());
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims[2]; ++z)
    for (std::size_t y = 0; y < dims[1]; ++y)
      for (std::size_t x = 0; x < dims[0]; ++x, ++idx) {
        const double phase = constants::two_pi * double(x) / double(dims[0]);
        rho[idx] = std::cos(phase);
      }
  auto vh = ham::hartree_potential(setup, fft, rho);
  const double g2 = grid::norm2(g);
  for (std::size_t i = 0; i < rho.size(); ++i)
    EXPECT_NEAR(vh[i], constants::four_pi / g2 * rho[i], 1e-9);
}

TEST(Hartree, IgnoresUniformBackground) {
  auto setup = test::make_si8_setup(4.0, 1);
  fft::Fft3D fft(setup.dense_grid.dims());
  std::vector<double> rho(setup.n_dense(), 0.7);
  auto vh = ham::hartree_potential(setup, fft, rho);
  for (double v : vh) EXPECT_NEAR(v, 0.0, 1e-11);
}

TEST(Hartree, EnergyIsNonNegative) {
  auto setup = test::make_si8_setup(4.0, 1);
  fft::Fft3D fft(setup.dense_grid.dims());
  Rng rng(29);
  std::vector<double> rho(setup.n_dense());
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  auto vh = ham::hartree_potential(setup, fft, rho);
  EXPECT_GE(ham::hartree_energy(setup, rho, vh), -1e-12);
}

TEST(Hartree, EnergyMatchesReciprocalSum) {
  auto setup = test::make_si8_setup(4.0, 1);
  const auto dims = setup.dense_grid.dims();
  fft::Fft3D fft(dims);
  Rng rng(31);
  std::vector<double> rho(setup.n_dense());
  for (auto& v : rho) v = rng.uniform(0.0, 0.5);
  auto vh = ham::hartree_potential(setup, fft, rho);
  const double e_real = ham::hartree_energy(setup, rho, vh);

  // E_H = (Omega/2) sum_{G!=0} 4 pi |rho(G)|^2 / G^2.
  std::vector<Complex> work(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) work[i] = Complex{rho[i], 0.0};
  fft.forward(work.data());
  double e_g = 0.0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double g2 = setup.dense_g2[i];
    if (g2 < 1e-12) continue;
    const Complex rg = work[i] / static_cast<double>(work.size());
    e_g += constants::four_pi * std::norm(rg) / g2;
  }
  e_g *= 0.5 * setup.volume();
  EXPECT_NEAR(e_real, e_g, 1e-9 * (1.0 + e_g));
}

}  // namespace
}  // namespace pwdft
