#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown doc set.

Usage:
    tools/check_docs_links.py [--root REPO_ROOT]

Scans README.md, ROADMAP.md, docs/*.md, and bench/README.md for markdown
links/images `[text](target)` and checks that every *relative* target
(anything that is not http(s)/mailto or a pure #anchor) resolves to an
existing file or directory, after stripping a trailing #anchor. Targets
inside fenced code blocks (``` ... ```) and inline code spans are ignored.

Exit status 0 when every link resolves, 1 otherwise (each broken link is
reported as file:line). This is the CI `docs-check` step, so the cross-links
between the performance/architecture/threading docs can't rot silently.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root):
    files = [root / "README.md", root / "ROADMAP.md", root / "bench" / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(path, root):
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("``", line)):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                broken.append((lineno, target, "escapes the repository"))
                continue
            if not resolved.exists():
                broken.append((lineno, target, "does not exist"))
    return broken


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=pathlib.Path(__file__).resolve().parent.parent,
                    type=pathlib.Path, help="repository root (default: script's parent)")
    args = ap.parse_args()

    files = doc_files(args.root)
    if not files:
        print("docs-check: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for f in files:
        for lineno, target, why in check_file(f, args.root):
            print(f"{f.relative_to(args.root)}:{lineno}: broken link '{target}' ({why})",
                  file=sys.stderr)
            failures += 1
    checked = ", ".join(str(f.relative_to(args.root)) for f in files)
    if failures:
        print(f"docs-check: {failures} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"docs-check: all relative links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
